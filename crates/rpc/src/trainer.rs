//! Networked MAMDR training against the loopback [`PsServer`], with worker
//! supervision, crash-resumable rounds, and divergence guardrails.
//!
//! The driver mirrors the in-process synchronous trainer
//! (`DistributedConfig::sync_rounds`) move for move: identical domain
//! partitions, identical per-worker seeds, identical aggregation, and the
//! same single-writer gradient application — worker order, keys sorted.
//! The only difference is *where* reads and writes go: worker threads pull
//! rows through [`WorkerClient`]s over TCP, and the driver delivers the
//! outer gradients as sequence-numbered `Push` RPCs. With fault injection
//! off, a loopback run therefore produces bit-identical parameters,
//! traffic counters and report to the in-process trainer; with faults on,
//! retries and deduplication keep the *parameters* identical while the
//! `rpc_*` counters record exactly what the fault plan injected.
//!
//! ## Supervision
//!
//! Workers are supervised, not trusted: each one reports its round result
//! (or a typed [`WorkerFailure`]) to the driver over a channel *before*
//! entering the round barrier. A worker that crashes ([`FaultPlan`]
//! `kill`), hangs past [`LoopbackConfig::worker_deadline`], or exhausts
//! its RPC retries is restarted: the supervisor re-runs its domain
//! partition on a fresh thread with the *same* client id and round seed.
//! Because workers are read-only during a round (the server is quiescent
//! until every worker joins), the re-run produces bit-identical gradients
//! — so a recovered round is indistinguishable from an undisturbed one,
//! down to the parameter bits. Restarts are visible as
//! `rpc_worker_restarts_total`; a partition that keeps failing past
//! [`LoopbackConfig::max_worker_retries`] fails the round with
//! [`TrainerError::RoundFailed`] instead of looping forever.
//!
//! ## Crash-resumable rounds
//!
//! With [`LoopbackConfig::checkpoint_every`] set, the driver writes a
//! parameter checkpoint plus a [`RoundJournal`] (round index, report
//! aggregates, and the Adagrad accumulators the checkpoint format omits)
//! at each boundary. The journal is written *after* the checkpoint and is
//! the commit point: a torn write is detected by its checksum and resume
//! falls back to the previous boundary. A restarted driver with
//! [`LoopbackConfig::resume`] restores the store and re-runs the remaining
//! rounds; since every RNG stream is derived statelessly from
//! `(seed, epoch, worker)`, the resumed run's final parameters and report
//! are bit-identical to an uninterrupted run.
//!
//! ## Divergence guardrails
//!
//! When [`mamdr_ps::GuardConfig`] is enabled, every worker-round update is
//! vetted (in application order) before the driver pushes it: non-finite
//! or exploding loss / gradient norms are skipped, and after K consecutive
//! trips the store is rolled back in place to the last clean round
//! boundary — values *and* optimizer state.

use crate::client::{Request, RetryPolicy, RpcRowSource, WorkerClient};
use crate::fault::{FaultPlan, FaultState};
use crate::server::PsServer;
use mamdr_data::{MdrDataset, Split};
use mamdr_obs::{maybe_child, maybe_span, MetricsRegistry, SpanContext, Tracer};
use mamdr_ps::journal::{latest_journal, RoundJournal};
use mamdr_ps::trainer::{
    evaluate_server, partition_domains, run_cached_round, seed_server, worker_round_seed,
    CachedRoundOutput,
};
use mamdr_ps::{
    checkpoint, outer_grad_norm, CacheStats, DistributedConfig, DistributedReport, GuardRail,
    GuardVerdict, ParamKey, ParameterServer, SyncMode, TimedRowSource, WIRE_BATCH_KEYS,
};
use mamdr_tensor::pool;
use mamdr_tensor::rng::derive_seed;
use std::net::SocketAddr;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// One worker's typed failure, as observed by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFailure {
    /// The worker crashed before doing any work (injected via the fault
    /// plan's `kill` schedule, or a real thread death).
    Killed {
        /// Worker index within the round.
        worker: usize,
    },
    /// The worker missed the supervisor's deadline.
    Hung {
        /// Worker index within the round.
        worker: usize,
    },
    /// The worker's row reads failed past the client's retry budget.
    Rpc {
        /// Worker index within the round.
        worker: usize,
        /// The first RPC failure.
        error: String,
    },
    /// The worker finished its round but could not register at the
    /// barrier.
    Barrier {
        /// Worker index within the round.
        worker: usize,
        /// The barrier failure.
        error: String,
    },
    /// The worker thread panicked.
    Panicked {
        /// Worker index within the round.
        worker: usize,
    },
}

impl WorkerFailure {
    /// The worker index the failure belongs to.
    pub fn worker(&self) -> usize {
        match self {
            WorkerFailure::Killed { worker }
            | WorkerFailure::Hung { worker }
            | WorkerFailure::Rpc { worker, .. }
            | WorkerFailure::Barrier { worker, .. }
            | WorkerFailure::Panicked { worker } => *worker,
        }
    }
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerFailure::Killed { worker } => write!(f, "worker {worker} killed"),
            WorkerFailure::Hung { worker } => write!(f, "worker {worker} missed its deadline"),
            WorkerFailure::Rpc { worker, error } => write!(f, "worker {worker} rpc: {error}"),
            WorkerFailure::Barrier { worker, error } => {
                write!(f, "worker {worker} barrier: {error}")
            }
            WorkerFailure::Panicked { worker } => write!(f, "worker {worker} panicked"),
        }
    }
}

/// A distributed-training failure the driver could not recover from.
#[derive(Debug)]
pub enum TrainerError {
    /// The configuration is inconsistent (e.g. resume without a
    /// checkpoint directory).
    Config(String),
    /// Binding or running the loopback server failed.
    Io(std::io::Error),
    /// The server was already shut down.
    ServerStopped,
    /// A round could not be completed even after restarting its failed
    /// workers.
    RoundFailed {
        /// The failed round.
        epoch: usize,
        /// The unrecovered failures.
        failures: Vec<WorkerFailure>,
    },
    /// A driver-side RPC (gradient push or checkpoint) failed past its
    /// retry budget.
    Driver(String),
    /// Resume state could not be loaded (no journal, or a checkpoint /
    /// journal mismatch).
    Resume(String),
}

impl std::fmt::Display for TrainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainerError::Config(m) => write!(f, "bad trainer config: {m}"),
            TrainerError::Io(e) => write!(f, "server I/O: {e}"),
            TrainerError::ServerStopped => write!(f, "server already shut down"),
            TrainerError::RoundFailed { epoch, failures } => {
                write!(f, "round {epoch} failed: ")?;
                for (i, fail) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{fail}")?;
                }
                Ok(())
            }
            TrainerError::Driver(m) => write!(f, "driver rpc: {m}"),
            TrainerError::Resume(m) => write!(f, "resume: {m}"),
        }
    }
}

impl std::error::Error for TrainerError {}

impl From<std::io::Error> for TrainerError {
    fn from(e: std::io::Error) -> Self {
        TrainerError::Io(e)
    }
}

/// Configuration of a loopback distributed run.
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// The training hyper-parameters, shared verbatim with the in-process
    /// trainer. `mode` must be [`SyncMode::Cached`] — the no-cache
    /// baseline's per-example round trips are an in-process measurement
    /// tool, not a wire protocol.
    pub train: DistributedConfig,
    /// Deterministic fault schedule; `None` injects nothing.
    pub fault: Option<FaultPlan>,
    /// Client retry/deadline policy.
    pub retry: RetryPolicy,
    /// Where `Checkpoint` RPCs write snapshots (`None` disables them).
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint + round journal every this many rounds
    /// (`0` disables journaling). Requires a checkpoint directory.
    pub checkpoint_every: usize,
    /// Resume from the newest valid journal in the checkpoint directory
    /// instead of starting from round 0.
    pub resume: bool,
    /// How long the supervisor waits without hearing from *any* worker
    /// before presuming the missing ones hung and restarting them.
    pub worker_deadline: Duration,
    /// Restarts per worker per round before the round is failed.
    pub max_worker_retries: u32,
    /// When present, every round is recorded as a span tree — driver
    /// phases (partition / workers / apply / journal / evaluate), one
    /// span per worker round with pull vs compute attribution, and every
    /// RPC with its server-side handling parented across the wire.
    /// Training results are bit-identical with or without it.
    pub tracer: Option<Arc<Tracer>>,
}

impl LoopbackConfig {
    /// A loopback config over training hyper-parameters, no faults, no
    /// journaling, and a supervision deadline generous enough that only a
    /// genuinely wedged worker trips it.
    pub fn new(train: DistributedConfig) -> Self {
        LoopbackConfig {
            train,
            fault: None,
            retry: RetryPolicy::default(),
            checkpoint_dir: None,
            checkpoint_every: 0,
            resume: false,
            worker_deadline: Duration::from_secs(60),
            max_worker_retries: 2,
            tracer: None,
        }
    }
}

/// The aggregates a resumed run starts from (all zero for a fresh run).
#[derive(Default)]
struct ResumeBase {
    start_epoch: usize,
    cache: CacheStats,
    max_staleness: u64,
    round_losses: Vec<f64>,
    traffic: (u64, u64, u64, u64),
    guard_trips: u64,
    guard_rollbacks: u64,
}

/// A full store snapshot — parameter rows plus Adagrad accumulators — the
/// guard's rollback target.
type StoreSnapshot = (Vec<(ParamKey, Vec<f32>)>, Vec<(ParamKey, Vec<f32>)>);

/// The networked PS–worker trainer: a loopback [`PsServer`] plus N worker
/// threads driving it through [`WorkerClient`]s, under driver-side
/// supervision.
pub struct DistributedTrainer {
    ps: Arc<ParameterServer>,
    server: Option<PsServer>,
    addr: SocketAddr,
    cfg: LoopbackConfig,
    metrics: Arc<MetricsRegistry>,
    resume_base: ResumeBase,
}

impl DistributedTrainer {
    /// Seeds a fresh store exactly like [`mamdr_ps::DistributedMamdr::new`]
    /// and starts the loopback server on an ephemeral port. With
    /// [`LoopbackConfig::resume`], the newest valid journal in the
    /// checkpoint directory is loaded on top: parameter rows from its
    /// checkpoint, Adagrad accumulators and report aggregates from the
    /// journal itself.
    pub fn new(
        ds: &MdrDataset,
        cfg: LoopbackConfig,
        metrics: Arc<MetricsRegistry>,
    ) -> Result<Self, TrainerError> {
        if cfg.train.mode != SyncMode::Cached {
            return Err(TrainerError::Config(
                "the networked trainer implements the cached §IV-E protocol only".into(),
            ));
        }
        if (cfg.checkpoint_every > 0 || cfg.resume) && cfg.checkpoint_dir.is_none() {
            return Err(TrainerError::Config(
                "checkpoint_every / resume require a checkpoint directory".into(),
            ));
        }
        let ps = Arc::new(ParameterServer::new(cfg.train.n_shards, cfg.train.dim));
        seed_server(&ps, ds, cfg.train.dim, cfg.train.seed);
        let resume_base = if cfg.resume {
            match &cfg.checkpoint_dir {
                Some(dir) => load_resume_state(&ps, dir, &cfg.train)?,
                None => ResumeBase::default(),
            }
        } else {
            ResumeBase::default()
        };
        let server = PsServer::bind(
            "127.0.0.1:0",
            Arc::clone(&ps),
            cfg.train.dim,
            Arc::clone(&metrics),
            cfg.checkpoint_dir.clone(),
            cfg.tracer.clone(),
        )?;
        let addr = server.addr();
        Ok(DistributedTrainer { ps, server: Some(server), addr, cfg, metrics, resume_base })
    }

    /// The server's loopback address, or [`TrainerError::ServerStopped`]
    /// once the server was drained.
    pub fn addr(&self) -> Result<SocketAddr, TrainerError> {
        if self.server.is_some() {
            Ok(self.addr)
        } else {
            Err(TrainerError::ServerStopped)
        }
    }

    /// The server-side store (for evaluation and checkpoint comparison).
    pub fn store(&self) -> &Arc<ParameterServer> {
        &self.ps
    }

    /// The round the next `train` call starts at (nonzero after a
    /// resume).
    pub fn start_epoch(&self) -> usize {
        self.resume_base.start_epoch
    }

    /// A client with this run's retry policy and — when a fault plan is
    /// configured — a fault stream decorrelated by `(stream, client_id)`.
    fn make_client(&self, client_id: u32, stream: u64) -> WorkerClient {
        let fault = self.cfg.fault.as_ref().map(|plan| {
            let mut p = plan.clone();
            p.seed = derive_seed(plan.seed, stream);
            FaultState::new(p, client_id)
        });
        WorkerClient::new(self.addr, client_id, self.cfg.retry, fault, Arc::clone(&self.metrics))
            .with_tracer(self.cfg.tracer.clone())
    }

    /// One worker's round: scheduled-fault checks, the cached inner loop
    /// over RPC reads, and the poison injection. Returns the round output
    /// plus the client so the caller can run the barrier *after* reporting
    /// the result to the supervisor.
    fn worker_round(
        &self,
        ds: &MdrDataset,
        epoch: usize,
        w: usize,
        part: &[usize],
        is_replacement: bool,
        parent: Option<SpanContext>,
    ) -> Result<(CachedRoundOutput, WorkerClient), WorkerFailure> {
        let cfg = self.cfg.train;
        if !is_replacement {
            if let Some(plan) = &self.cfg.fault {
                if plan.should_kill(epoch as u64, w as u32) {
                    // Simulated crash: no client, no reads, no barrier.
                    self.metrics.counter("rpc_faults_worker_kills_total").inc();
                    return Err(WorkerFailure::Killed { worker: w });
                }
                if plan.should_hang(epoch as u64, w as u32) {
                    self.metrics.counter("rpc_faults_worker_hangs_total").inc();
                    std::thread::sleep(Duration::from_micros(plan.hang_micros));
                }
            }
        }
        let tracer = self.cfg.tracer.clone();
        let worker_span = {
            let mut span = maybe_child(&tracer, "worker.round", parent);
            if let Some(s) = &mut span {
                s.attr("epoch", epoch as u64);
                s.attr("worker", w as u64);
                s.attr("replacement", is_replacement as u64);
            }
            span
        };
        let mut client = self.make_client(w as u32 + 1, epoch as u64);
        client.set_trace_parent(worker_span.as_ref().map(|s| s.ctx()));
        let src = RpcRowSource::new(client, cfg.dim);
        let round_seed = worker_round_seed(cfg.seed, epoch, w);
        // With a tracer, split the worker's wall-clock into time spent in
        // row reads (the wire) vs everything else (local compute). The
        // decorated source only times calls; the training math it forwards
        // is byte-for-byte the untraced path.
        let mut out = match tracer.as_deref() {
            Some(t) => {
                let timed = TimedRowSource::new(&src);
                let t0 = std::time::Instant::now();
                let out = run_cached_round(&timed, ds, part, cfg.inner_lr, round_seed);
                let total = t0.elapsed();
                let pull = timed.elapsed();
                t.record_phase("round.pull", pull);
                t.record_phase("round.compute", total.saturating_sub(pull));
                out
            }
            None => run_cached_round(&src, ds, part, cfg.inner_lr, round_seed),
        };
        if let Some(e) = src.take_error() {
            // The round trained against zero-filled fallback rows after the
            // first failure; its output is garbage and must be re-run.
            return Err(WorkerFailure::Rpc { worker: w, error: e.to_string() });
        }
        if self.cfg.fault.as_ref().is_some_and(|p| p.should_poison(epoch as u64, w as u32)) {
            // Divergent-data injection: one NaN component is enough for the
            // guard's norm check to catch the whole update.
            if let Some(first) = out.grads.first_mut().and_then(|(_, g)| g.first_mut()) {
                *first = f32::NAN;
            }
        }
        Ok((out, src.into_client()))
    }

    /// Runs one supervised round: spawns every worker, collects results
    /// (or typed failures) over a channel, restarts failed or hung
    /// partitions with the same client id and seed, and releases the
    /// barrier for workers the supervisor gave up on. Returns the round
    /// outputs in worker order.
    fn run_round(
        &self,
        ds: &MdrDataset,
        epoch: usize,
        partitions: &[Vec<usize>],
        parent: Option<SpanContext>,
    ) -> Result<Vec<CachedRoundOutput>, TrainerError> {
        let n = partitions.len();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, Result<CachedRoundOutput, WorkerFailure>)>();
            let launch = |w: usize, is_replacement: bool| {
                let tx = tx.clone();
                let part = &partitions[w];
                scope.spawn(move || {
                    let ran = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.worker_round(ds, epoch, w, part, is_replacement, parent)
                    }));
                    match ran {
                        Err(_) => {
                            let _ = tx.send((w, Err(WorkerFailure::Panicked { worker: w })));
                        }
                        Ok(Err(fail)) => {
                            let _ = tx.send((w, Err(fail)));
                        }
                        Ok(Ok((out, mut client))) => {
                            // Result first, barrier second: the supervisor
                            // learns the outcome even while slower workers
                            // hold the barrier open.
                            let _ = tx.send((w, Ok(out)));
                            if let Err(e) = client.barrier(epoch as u64, n as u32) {
                                let fail =
                                    WorkerFailure::Barrier { worker: w, error: e.to_string() };
                                let _ = tx.send((w, Err(fail)));
                            }
                        }
                    }
                });
            };
            // Barrier arrival is a set insert keyed by client id, so a
            // stand-in arriving with a dead worker's id releases everyone
            // else. Rescue clients carry no fault plan: the recovery path
            // must be reliable even under an adversarial schedule.
            let release_barrier = |w: usize| {
                let mut client = WorkerClient::new(
                    self.addr,
                    w as u32 + 1,
                    self.cfg.retry,
                    None,
                    Arc::clone(&self.metrics),
                );
                scope.spawn(move || {
                    let _ = client.barrier(epoch as u64, n as u32);
                });
            };
            for w in 0..n {
                launch(w, false);
            }
            let mut outputs: Vec<Option<CachedRoundOutput>> = (0..n).map(|_| None).collect();
            let mut retries = vec![0u32; n];
            let mut given_up = vec![false; n];
            let mut failures: Vec<WorkerFailure> = Vec::new();
            let mut outstanding = n;
            // One shared handler for "worker w failed with `fail`":
            // restart while the budget lasts, otherwise record the failure
            // and unblock the barrier in its place.
            let on_failure = |w: usize,
                              fail: WorkerFailure,
                              retries: &mut Vec<u32>,
                              given_up: &mut Vec<bool>,
                              failures: &mut Vec<WorkerFailure>,
                              outstanding: &mut usize| {
                self.metrics.counter("rpc_worker_failures_total").inc();
                if retries[w] < self.cfg.max_worker_retries {
                    retries[w] += 1;
                    self.metrics.counter("rpc_worker_restarts_total").inc();
                    launch(w, true);
                } else {
                    given_up[w] = true;
                    *outstanding -= 1;
                    failures.push(fail);
                    release_barrier(w);
                }
            };
            while outstanding > 0 {
                match rx.recv_timeout(self.cfg.worker_deadline) {
                    Ok((w, Ok(out))) => {
                        // A revived hung worker can race its replacement;
                        // both computed identical output (same seed,
                        // read-only server), so first-in wins safely.
                        if outputs[w].is_none() && !given_up[w] {
                            outputs[w] = Some(out);
                            outstanding -= 1;
                        }
                    }
                    Ok((w, Err(fail))) => {
                        if matches!(fail, WorkerFailure::Barrier { .. }) && outputs[w].is_some() {
                            // The work is done but the arrival never
                            // registered; arrive in its place so the other
                            // workers are not held hostage.
                            self.metrics.counter("rpc_barrier_rescues_total").inc();
                            release_barrier(w);
                        } else if outputs[w].is_none() && !given_up[w] {
                            on_failure(
                                w,
                                fail,
                                &mut retries,
                                &mut given_up,
                                &mut failures,
                                &mut outstanding,
                            );
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Nobody reported for a full deadline: every
                        // partition still outstanding is presumed hung.
                        for w in 0..n {
                            if outputs[w].is_none() && !given_up[w] {
                                on_failure(
                                    w,
                                    WorkerFailure::Hung { worker: w },
                                    &mut retries,
                                    &mut given_up,
                                    &mut failures,
                                    &mut outstanding,
                                );
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // Unreachable while the supervisor holds `tx`, but
                        // never hang on it: fail what is left.
                        for w in 0..n {
                            if outputs[w].is_none() && !given_up[w] {
                                given_up[w] = true;
                                outstanding -= 1;
                                failures.push(WorkerFailure::Panicked { worker: w });
                                release_barrier(w);
                            }
                        }
                    }
                }
            }
            if failures.is_empty() {
                let collected: Vec<CachedRoundOutput> = outputs.into_iter().flatten().collect();
                if collected.len() == n {
                    Ok(collected)
                } else {
                    Err(TrainerError::RoundFailed { epoch, failures: Vec::new() })
                }
            } else {
                Err(TrainerError::RoundFailed { epoch, failures })
            }
        })
    }

    /// Runs the configured rounds over the wire and reports exactly like
    /// the in-process trainer. Recovers killed / hung / disconnected
    /// workers, skips or rolls back divergent updates when the guard is
    /// enabled, and journals every [`LoopbackConfig::checkpoint_every`]
    /// rounds.
    pub fn train(&self, ds: &MdrDataset) -> Result<DistributedReport, TrainerError> {
        let cfg = self.cfg.train;
        if cfg.kernel_threads > 0 {
            pool::set_threads(cfg.kernel_threads);
        }
        let base = &self.resume_base;
        let mut combined = base.cache;
        let mut max_staleness = base.max_staleness;
        let mut round_losses = base.round_losses.clone();
        // The networked protocol is always synchronous (the driver is the
        // only writer), so the guard is active whenever it is enabled.
        let guard_active = cfg.guard.enabled;
        let mut guard = GuardRail::new(cfg.guard);
        let mut last_good: Option<StoreSnapshot> =
            if guard_active { Some((self.ps.dump_rows(), self.ps.dump_adagrad())) } else { None };
        // Client id 0 is the driver; workers are 1..=n. The driver's
        // pushes carry the fault plan too, so retries exercise the
        // server's exactly-once path where it matters most.
        let mut driver = self.make_client(0, 0xD0);
        let tracer = self.cfg.tracer.clone();
        for epoch in base.start_epoch..cfg.epochs {
            let round_span = {
                let mut span = maybe_span(&tracer, "round");
                if let Some(s) = &mut span {
                    s.attr("epoch", epoch as u64);
                }
                span
            };
            let round_ctx = round_span.as_ref().map(|s| s.ctx());
            let partitions = {
                let _span = maybe_child(&tracer, "round.partition", round_ctx);
                partition_domains(ds.n_domains(), cfg.seed, epoch, cfg.n_workers)
            };
            let outputs = {
                let workers_span = maybe_child(&tracer, "round.workers", round_ctx);
                let workers_ctx = workers_span.as_ref().map(|s| s.ctx());
                self.run_round(ds, epoch, &partitions, workers_ctx)?
            };
            let apply_span = maybe_child(&tracer, "round.apply", round_ctx);
            driver.set_trace_parent(apply_span.as_ref().map(|s| s.ctx()));
            let mut loss_sum = 0.0f64;
            let mut n_examples = 0u64;
            let mut round_tripped = false;
            let mut pending_pushes: Vec<Request> = Vec::new();
            for out in outputs {
                combined.hits += out.cache.hits;
                combined.misses += out.cache.misses;
                max_staleness = max_staleness.max(out.staleness.max);
                if guard_active {
                    let worker_loss = if out.n_examples == 0 {
                        0.0
                    } else {
                        out.loss_sum / out.n_examples as f64
                    };
                    match guard.check(worker_loss, outer_grad_norm(&out.grads)).0 {
                        GuardVerdict::Accept => {}
                        GuardVerdict::Skip => {
                            round_tripped = true;
                            continue;
                        }
                        GuardVerdict::Rollback => {
                            // Rewind values and accumulators to the last
                            // clean boundary, discarding whatever this
                            // round already applied. Direct store access:
                            // the driver owns the apply phase, so there is
                            // no concurrent writer to race.
                            round_tripped = true;
                            if let Some((rows, acc)) = &last_good {
                                self.ps.restore_state(rows, acc);
                            }
                            continue;
                        }
                    }
                }
                loss_sum += out.loss_sum;
                n_examples += out.n_examples;
                // Single writer, worker order, keys pre-sorted: the same
                // total order the in-process synchronous driver applies,
                // delivered as one `PushMany` per wire chunk instead of
                // one `Push` per key.
                let reqs = push_many_requests(&out.grads, cfg.outer_lr);
                if guard_active {
                    // The guard interleaves verdicts with application (a
                    // rollback rewinds the store to the round boundary but
                    // never the traffic counters), so each accepted
                    // worker's update must hit the store before the next
                    // verdict — flush immediately rather than batching
                    // across workers.
                    flush_pushes(&mut driver, reqs)?;
                } else {
                    pending_pushes.extend(reqs);
                }
            }
            // No guard: every accepted worker's chunks ride one pipelined
            // window. Same requests, same order, same sequence numbers as
            // per-worker flushing — only the wire scheduling differs.
            flush_pushes(&mut driver, std::mem::take(&mut pending_pushes))?;
            drop(apply_span);
            round_losses.push(if n_examples == 0 { 0.0 } else { loss_sum / n_examples as f64 });
            if guard_active && !round_tripped {
                last_good = Some((self.ps.dump_rows(), self.ps.dump_adagrad()));
            }
            let rounds_done = epoch + 1;
            if self.cfg.checkpoint_every > 0 && rounds_done % self.cfg.checkpoint_every == 0 {
                let _span = maybe_child(&tracer, "round.journal", round_ctx);
                self.write_journal(
                    rounds_done as u64,
                    combined,
                    max_staleness,
                    &round_losses,
                    &guard,
                )?;
            }
        }
        let (pulls, pushes, bp, bs) = self.ps.traffic().snapshot();
        self.ps.export_kv_gauges(&self.metrics);
        let mean_auc = {
            let _span = maybe_span(&tracer, "round.evaluate");
            evaluate_server(&self.ps, ds, Split::Test)
        };
        Ok(DistributedReport {
            mean_auc,
            pulls: base.traffic.0 + pulls,
            pushes: base.traffic.1 + pushes,
            total_bytes: base.traffic.2 + base.traffic.3 + bp + bs,
            cache: combined,
            max_staleness,
            round_losses,
            guard_trips: base.guard_trips + guard.trips(),
            guard_rollbacks: base.guard_rollbacks + guard.rollbacks(),
        })
    }

    /// Writes the round-boundary checkpoint (over RPC, so the server-side
    /// path is exercised) and then the journal that commits it.
    fn write_journal(
        &self,
        rounds_done: u64,
        cache: CacheStats,
        max_staleness: u64,
        round_losses: &[f64],
        guard: &GuardRail,
    ) -> Result<(), TrainerError> {
        let Some(dir) = &self.cfg.checkpoint_dir else {
            return Err(TrainerError::Config("journaling requires a checkpoint directory".into()));
        };
        let ckpt_path = self.checkpoint(rounds_done)?;
        let checkpoint_file = Path::new(&ckpt_path)
            .file_name()
            .and_then(|n| n.to_str())
            .map(str::to_owned)
            .unwrap_or_else(|| ckpt_path.clone());
        let base = &self.resume_base;
        let (pulls, pushes, bp, bs) = self.ps.traffic().snapshot();
        let journal = RoundJournal {
            rounds_done,
            checkpoint_file,
            cache,
            max_staleness,
            traffic: (
                base.traffic.0 + pulls,
                base.traffic.1 + pushes,
                base.traffic.2 + bp,
                base.traffic.3 + bs,
            ),
            guard_trips: base.guard_trips + guard.trips(),
            guard_rollbacks: base.guard_rollbacks + guard.rollbacks(),
            round_losses: round_losses.to_vec(),
            dim: self.cfg.train.dim as u32,
            adagrad: self.ps.dump_adagrad(),
        };
        journal
            .write_to_dir(dir)
            .map_err(|e| TrainerError::Driver(format!("journal write: {e}")))?;
        self.metrics.counter("rpc_journal_writes_total").inc();
        Ok(())
    }

    /// Writes a server-side checkpoint via the `Checkpoint` RPC and
    /// returns its path. Requires [`LoopbackConfig::checkpoint_dir`].
    pub fn checkpoint(&self, round: u64) -> Result<String, TrainerError> {
        self.make_client(u32::MAX, 0xCC)
            .checkpoint(round)
            .map_err(|e| TrainerError::Driver(format!("checkpoint rpc: {e}")))
    }

    /// Gracefully drains the server: `Shutdown` RPC, then joins the accept
    /// loop and every connection thread. A failed drain request is
    /// non-fatal — the drain flag is set directly instead (counted as
    /// `rpc_drain_fallback_total`), so a dead wire can never wedge the
    /// join. Idempotent: a second call is a no-op.
    pub fn shutdown(&mut self) {
        let Some(server) = self.server.take() else { return };
        // The drain request itself must not be fault-injected away.
        let mut client = WorkerClient::new(
            self.addr,
            u32::MAX - 1,
            self.cfg.retry,
            None,
            Arc::clone(&self.metrics),
        );
        if client.shutdown().is_err() {
            self.metrics.counter("rpc_drain_fallback_total").inc();
            server.begin_drain();
        }
        drop(client);
        server.join();
    }
}

/// Packs one worker's drained outer gradients into `PushMany` requests,
/// one per [`WIRE_BATCH_KEYS`] chunk, preserving the pre-sorted key order.
fn push_many_requests(grads: &[(ParamKey, Vec<f32>)], lr: f32) -> Vec<Request> {
    grads
        .chunks(WIRE_BATCH_KEYS)
        .map(|chunk| {
            let mut keys = Vec::with_capacity(chunk.len());
            let mut flat = Vec::new();
            for (key, delta) in chunk {
                keys.push(*key);
                flat.extend_from_slice(delta);
            }
            Request::PushMany { lr, keys, grads: flat }
        })
        .collect()
}

/// Sends a batch of driver pushes through one pipelined window and fails
/// the round on the first request that exhausts its retries.
fn flush_pushes(driver: &mut WorkerClient, reqs: Vec<Request>) -> Result<(), TrainerError> {
    if reqs.is_empty() {
        return Ok(());
    }
    driver
        .call_many(reqs)
        .map_err(|e| TrainerError::Driver(format!("gradient push batch: {e}")))?;
    Ok(())
}

/// Restores a resumed run's store and aggregates from the newest valid
/// journal in `dir`: parameter rows from the journal's checkpoint file,
/// Adagrad accumulators and report aggregates from the journal itself.
fn load_resume_state(
    ps: &ParameterServer,
    dir: &Path,
    train: &DistributedConfig,
) -> Result<ResumeBase, TrainerError> {
    let (journal_path, journal) = latest_journal(dir, None)
        .map_err(|e| TrainerError::Resume(format!("journal discovery: {e}")))?
        .ok_or_else(|| TrainerError::Resume(format!("no valid journal in {}", dir.display())))?;
    if journal.dim as usize != train.dim {
        return Err(TrainerError::Resume(format!(
            "journal {} has dim {}, config wants {}",
            journal_path.display(),
            journal.dim,
            train.dim
        )));
    }
    let ckpt_path = dir.join(&journal.checkpoint_file);
    let loaded = checkpoint::load_from_path(&ckpt_path, train.n_shards)
        .map_err(|e| TrainerError::Resume(format!("{}: {e}", ckpt_path.display())))?;
    ps.restore_state(&loaded.dump_rows(), &journal.adagrad);
    Ok(ResumeBase {
        start_epoch: journal.rounds_done as usize,
        cache: journal.cache,
        max_staleness: journal.max_staleness,
        round_losses: journal.round_losses,
        traffic: journal.traffic,
        guard_trips: journal.guard_trips,
        guard_rollbacks: journal.guard_rollbacks,
    })
}
