//! # mamdr-autodiff
//!
//! Reverse-mode automatic differentiation over [`mamdr_tensor::Tensor`].
//!
//! The MAMDR learning frameworks are *model agnostic*: they only interact
//! with a model through its loss value and its gradient with respect to a
//! flat parameter vector. This crate supplies that gradient. A model's
//! forward pass records every operation on a [`Tape`]; calling
//! [`Tape::backward`] replays the tape in reverse and accumulates adjoints
//! into per-parameter gradient tensors.
//!
//! The op set (~25 ops) is exactly what the ten CTR architectures in
//! `mamdr-models` need: dense layers, embedding gather, attention
//! (matmul/softmax/slice/concat), FM-style interactions
//! (mul/square/sum), dropout, normalization, and a numerically stable
//! binary-cross-entropy-with-logits loss.
//!
//! Every op's backward rule is verified against central finite differences
//! (see [`gradcheck`]) in unit and property tests.
//!
//! ```
//! use mamdr_autodiff::Tape;
//! use mamdr_tensor::Tensor;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec([1, 2], vec![1.0, 2.0]));
//! let w = tape.param(0, Tensor::from_vec([2, 1], vec![0.5, -0.25]));
//! let y = tape.matmul(x, w);
//! let loss = tape.sum_all(y);
//! let grads = tape.backward(loss);
//! // d loss / d w = x
//! assert_eq!(grads[&0].data(), &[1.0, 2.0]);
//! ```

pub mod gradcheck;
pub mod tape;

pub use tape::{Tape, Var};
