//! The autodiff tape: op recording and the reverse pass.

use mamdr_tensor::{Act, Tensor};
use std::collections::HashMap;

/// Numerically stable logistic sigmoid (re-exported from `mamdr-tensor`,
/// where the fused kernels need it; the old path keeps working).
pub use mamdr_tensor::stable_sigmoid;

/// Handle to a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

impl Var {
    /// The node index inside the tape.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded operation. Aux tensors needed by the backward rule (dropout
/// masks, labels, normalization scales) are stored inline.
enum Op {
    /// Constant input: no gradient flows past it.
    Leaf,
    /// Copy of parameter `param` — its adjoint is the parameter gradient.
    Param {
        param: usize,
    },
    /// Embedding rows gathered from parameter `param` (adjoint scatter-adds).
    GatherParam {
        param: usize,
        ids: Vec<u32>,
        table_shape: [usize; 2],
    },
    Add {
        a: Var,
        b: Var,
    },
    Sub {
        a: Var,
        b: Var,
    },
    Mul {
        a: Var,
        b: Var,
    },
    /// `a [m,n] + row [n]` broadcast over rows (bias add).
    AddRow {
        a: Var,
        row: Var,
    },
    /// `a [m,n] * col [m]` broadcast over columns (attention weighting).
    MulCol {
        a: Var,
        col: Var,
    },
    /// `op(a) @ op(b)` with independent transpose flags; the backward pass
    /// composes adjoints through the same unified GEMM kernel.
    Gemm {
        a: Var,
        b: Var,
        lhs_t: bool,
        rhs_t: bool,
    },
    /// Fused dense layer `act(x @ w + bias)`; forward and backward are
    /// bit-identical to the unfused gemm → add-row → activation chain.
    Dense {
        x: Var,
        w: Var,
        bias: Option<Var>,
        act: Act,
    },
    Transpose {
        a: Var,
    },
    Relu {
        a: Var,
    },
    Sigmoid {
        a: Var,
    },
    Tanh {
        a: Var,
    },
    Square {
        a: Var,
    },
    ScalarMul {
        a: Var,
        c: f32,
    },
    AddScalar {
        a: Var,
    },
    SumAll {
        a: Var,
    },
    MeanAll {
        a: Var,
    },
    /// `[m,n] -> [m,1]`, summing each row.
    SumColsKeep {
        a: Var,
    },
    /// `[m,n] -> [1,n]`, summing each column.
    SumRowsKeep {
        a: Var,
    },
    ConcatCols {
        parts: Vec<Var>,
    },
    SliceCols {
        a: Var,
        start: usize,
        len: usize,
    },
    SoftmaxRows {
        a: Var,
    },
    /// Batch normalization with stop-gradient statistics: the per-feature
    /// batch mean/std are treated as constants in the backward pass (the
    /// standard simplification for STAR's Partitioned Normalization when
    /// moving statistics are used at serving time).
    NormalizeRows {
        a: Var,
        inv_std: Tensor,
    },
    Dropout {
        a: Var,
        mask: Tensor,
    },
    /// Mean binary cross-entropy with logits; `labels` has the same number of
    /// elements as the logits node.
    BceWithLogitsMean {
        logits: Var,
        labels: Tensor,
    },
    Reshape {
        a: Var,
    },
}

/// A reverse-mode autodiff tape.
///
/// Construction order is the topological order: ops may only reference
/// earlier [`Var`]s, so the backward pass is a single reverse sweep.
pub struct Tape {
    values: Vec<Tensor>,
    ops: Vec<Op>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape { values: Vec::new(), ops: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value computed at `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.0]
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.values.push(value);
        self.ops.push(op);
        Var(self.values.len() - 1)
    }

    /// Records a constant input (no gradient).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Records a parameter copy; its adjoint becomes `grads[param]`.
    pub fn param(&mut self, param: usize, value: Tensor) -> Var {
        self.push(value, Op::Param { param })
    }

    /// Records an embedding gather from parameter table `param`.
    ///
    /// Only the gathered rows are stored on the tape; the backward pass
    /// scatter-adds row adjoints into a dense zero tensor of the full table
    /// shape.
    pub fn gather_param(&mut self, param: usize, table: &Tensor, ids: &[u32]) -> Var {
        let (rows, dim) = table.matrix_dims();
        let value = table.gather_rows(ids);
        self.push(value, Op::GatherParam { param, ids: ids.to_vec(), table_shape: [rows, dim] })
    }

    /// Elementwise add of same-shape values.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].add(&self.values[b.0]);
        self.push(v, Op::Add { a, b })
    }

    /// Elementwise subtract of same-shape values.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].sub(&self.values[b.0]);
        self.push(v, Op::Sub { a, b })
    }

    /// Elementwise multiply of same-shape values.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].mul(&self.values[b.0]);
        self.push(v, Op::Mul { a, b })
    }

    /// Adds a `[n]`-shaped bias row to every row of `a`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let v = self.values[a.0].add_row_broadcast(&self.values[row.0]);
        self.push(v, Op::AddRow { a, row })
    }

    /// Multiplies row `i` of `a` by the scalar `col[i]`.
    pub fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let v = self.values[a.0].mul_col_broadcast(&self.values[col.0]);
        self.push(v, Op::MulCol { a, col })
    }

    /// General matrix product `op(a) @ op(b)`, transposing either operand
    /// without materializing the transpose (see [`Tensor::gemm`]).
    pub fn gemm(&mut self, a: Var, b: Var, lhs_t: bool, rhs_t: bool) -> Var {
        let v = self.values[a.0].gemm(&self.values[b.0], lhs_t, rhs_t);
        self.push(v, Op::Gemm { a, b, lhs_t, rhs_t })
    }

    /// Matrix product (legacy wrapper over [`Tape::gemm`]).
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.gemm(a, b, false, false)
    }

    /// Fused dense layer `act(x @ w + bias)` as a single tape node.
    ///
    /// Produces bit-identical values and gradients to recording the
    /// gemm, bias add and activation separately, but touches the output
    /// once and stores one intermediate instead of three.
    pub fn dense(&mut self, x: Var, w: Var, bias: Option<Var>, act: Act) -> Var {
        let v =
            self.values[x.0].gemm_bias_act(&self.values[w.0], bias.map(|b| &self.values[b.0]), act);
        self.push(v, Op::Dense { x, w, bias, act })
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.values[a.0].transpose();
        self.push(v, Op::Transpose { a })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| x.max(0.0));
        self.push(v, Op::Relu { a })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(stable_sigmoid);
        self.push(v, Op::Sigmoid { a })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(f32::tanh);
        self.push(v, Op::Tanh { a })
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.values[a.0].map(|x| x * x);
        self.push(v, Op::Square { a })
    }

    /// Multiplies every element by a constant.
    pub fn scalar_mul(&mut self, a: Var, c: f32) -> Var {
        let v = self.values[a.0].scale(c);
        self.push(v, Op::ScalarMul { a, c })
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = self.values[a.0].map(|x| x + c);
        self.push(v, Op::AddScalar { a })
    }

    /// Sum of all elements, producing a scalar node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.values[a.0].sum());
        self.push(v, Op::SumAll { a })
    }

    /// Mean of all elements, producing a scalar node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.values[a.0].mean());
        self.push(v, Op::MeanAll { a })
    }

    /// Sums each row of `[m,n]`, producing `[m,1]`.
    pub fn sum_cols_keep(&mut self, a: Var) -> Var {
        let (m, _) = self.values[a.0].matrix_dims();
        let v = self.values[a.0].sum_cols().reshape([m, 1]);
        self.push(v, Op::SumColsKeep { a })
    }

    /// Sums each column of `[m,n]`, producing `[1,n]`.
    pub fn sum_rows_keep(&mut self, a: Var) -> Var {
        let (_, n) = self.values[a.0].matrix_dims();
        let v = self.values[a.0].sum_rows().reshape([1, n]);
        self.push(v, Op::SumRowsKeep { a })
    }

    /// Concatenates matrices along the column axis.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &self.values[p.0]).collect();
        let v = Tensor::concat_cols(&tensors);
        self.push(v, Op::ConcatCols { parts: parts.to_vec() })
    }

    /// Extracts columns `[start, start+len)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let v = self.values[a.0].slice_cols(start, len);
        self.push(v, Op::SliceCols { a, start, len })
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = self.values[a.0].softmax_rows();
        self.push(v, Op::SoftmaxRows { a })
    }

    /// Batch normalization over rows with stop-gradient statistics.
    ///
    /// Normalizes each feature (column) to zero mean / unit variance using
    /// the batch statistics, treating those statistics as constants in the
    /// backward pass.
    pub fn normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        let x = &self.values[a.0];
        let (m, n) = x.matrix_dims();
        let mean = x.sum_rows().scale(1.0 / m as f32);
        let mut var = vec![0.0f32; n];
        for i in 0..m {
            for (j, v) in var.iter_mut().enumerate() {
                let d = x.at(i, j) - mean.data()[j];
                *v += d * d;
            }
        }
        let inv_std =
            Tensor::from_vec([n], var.iter().map(|&v| 1.0 / (v / m as f32 + eps).sqrt()).collect());
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                *out.at_mut(i, j) = (x.at(i, j) - mean.data()[j]) * inv_std.data()[j];
            }
        }
        self.push(out, Op::NormalizeRows { a, inv_std })
    }

    /// Applies a precomputed dropout mask (already scaled by `1/(1-p)`).
    pub fn dropout(&mut self, a: Var, mask: Tensor) -> Var {
        let v = self.values[a.0].mul(&mask);
        self.push(v, Op::Dropout { a, mask })
    }

    /// Mean binary cross-entropy with logits (numerically stable).
    ///
    /// `labels` must contain {0,1} values with the same element count as the
    /// logits node. Produces a scalar node.
    pub fn bce_with_logits_mean(&mut self, logits: Var, labels: Tensor) -> Var {
        let z = &self.values[logits.0];
        assert_eq!(z.numel(), labels.numel(), "labels/logits length mismatch");
        let n = z.numel().max(1) as f32;
        let mut total = 0.0f32;
        for (&zi, &yi) in z.data().iter().zip(labels.data()) {
            // max(z,0) - z*y + ln(1 + exp(-|z|))
            total += zi.max(0.0) - zi * yi + (-zi.abs()).exp().ln_1p();
        }
        let v = Tensor::scalar(total / n);
        self.push(v, Op::BceWithLogitsMean { logits, labels })
    }

    /// Reshapes a node's value (element count preserved).
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self.values[a.0].clone().reshape(shape);
        self.push(v, Op::Reshape { a })
    }

    /// Runs the reverse pass from scalar node `loss`.
    ///
    /// Returns the gradient of `loss` with respect to every parameter that
    /// participated in the forward pass, keyed by parameter index. Parameters
    /// touched only through [`Tape::gather_param`] receive dense tensors of
    /// the full table shape with scatter-added rows.
    pub fn backward(&mut self, loss: Var) -> HashMap<usize, Tensor> {
        assert_eq!(self.values[loss.0].numel(), 1, "backward requires a scalar loss");
        let n = self.values.len();
        let mut adj: Vec<Option<Tensor>> = vec![None; n];
        adj[loss.0] = Some(Tensor::scalar(1.0));
        let mut grads: HashMap<usize, Tensor> = HashMap::new();

        for idx in (0..=loss.0).rev() {
            let d = match adj[idx].take() {
                Some(d) => d,
                None => continue,
            };
            match &self.ops[idx] {
                Op::Leaf => {}
                Op::Param { param } => accumulate_param(&mut grads, *param, d),
                Op::GatherParam { param, ids, table_shape } => {
                    let entry = grads
                        .entry(*param)
                        .or_insert_with(|| Tensor::zeros([table_shape[0], table_shape[1]]));
                    entry.scatter_add_rows(ids, &d);
                }
                Op::Add { a, b } => {
                    let (a, b) = (*a, *b);
                    accumulate(&mut adj, b, d.clone());
                    accumulate(&mut adj, a, d);
                }
                Op::Sub { a, b } => {
                    let (a, b) = (*a, *b);
                    accumulate(&mut adj, b, d.scale(-1.0));
                    accumulate(&mut adj, a, d);
                }
                Op::Mul { a, b } => {
                    let (a, b) = (*a, *b);
                    let da = d.mul(&self.values[b.0]);
                    let db = d.mul(&self.values[a.0]);
                    accumulate(&mut adj, a, da);
                    accumulate(&mut adj, b, db);
                }
                Op::AddRow { a, row } => {
                    let (a, row) = (*a, *row);
                    let drow_flat = d.sum_rows();
                    let drow = reshape_like(drow_flat, &self.values[row.0]);
                    accumulate(&mut adj, a, d);
                    accumulate(&mut adj, row, drow);
                }
                Op::MulCol { a, col } => {
                    let (a, col) = (*a, *col);
                    let da = d.mul_col_broadcast(&self.values[col.0]);
                    let dcol_flat = d.mul(&self.values[a.0]).sum_cols();
                    let dcol = reshape_like(dcol_flat, &self.values[col.0]);
                    accumulate(&mut adj, a, da);
                    accumulate(&mut adj, col, dcol);
                }
                Op::Gemm { a, b, lhs_t, rhs_t } => {
                    let (a, b, lhs_t, rhs_t) = (*a, *b, *lhs_t, *rhs_t);
                    // With C = op(a) @ op(b): dA' = d @ op(b)ᵀ and
                    // dB' = op(a)ᵀ @ d; a transposed operand receives the
                    // transposed adjoint, which the flags express without
                    // ever materializing a transpose.
                    let da = if lhs_t {
                        self.values[b.0].gemm(&d, rhs_t, true)
                    } else {
                        d.gemm(&self.values[b.0], false, !rhs_t)
                    };
                    let db = if rhs_t {
                        d.gemm(&self.values[a.0], true, lhs_t)
                    } else {
                        self.values[a.0].gemm(&d, !lhs_t, false)
                    };
                    accumulate(&mut adj, a, da);
                    accumulate(&mut adj, b, db);
                }
                Op::Dense { x, w, bias, act } => {
                    let (x, w, bias, act) = (*x, *w, *bias, *act);
                    // The stored output y = act(z) determines act'(z)
                    // exactly: relu's y > 0 ⟺ z > 0, and sigmoid/tanh
                    // derivatives are functions of y — so dz matches the
                    // unfused chain bit for bit.
                    let y = &self.values[idx];
                    let dz = match act {
                        Act::Linear => d,
                        Act::Relu => d.zip(y, |g, yv| if yv > 0.0 { g } else { 0.0 }),
                        Act::Sigmoid => d.zip(y, |g, s| g * s * (1.0 - s)),
                        Act::Tanh => d.zip(y, |g, t| g * (1.0 - t * t)),
                    };
                    let dx = dz.gemm(&self.values[w.0], false, true);
                    let dw = self.values[x.0].gemm(&dz, true, false);
                    accumulate(&mut adj, x, dx);
                    accumulate(&mut adj, w, dw);
                    if let Some(bias) = bias {
                        let db = reshape_like(dz.sum_rows(), &self.values[bias.0]);
                        accumulate(&mut adj, bias, db);
                    }
                }
                Op::Transpose { a } => {
                    let a = *a;
                    accumulate(&mut adj, a, d.transpose());
                }
                Op::Relu { a } => {
                    let a = *a;
                    let da = d.zip(&self.values[a.0], |g, x| if x > 0.0 { g } else { 0.0 });
                    accumulate(&mut adj, a, da);
                }
                Op::Sigmoid { a } => {
                    let a = *a;
                    let da = d.zip(&self.values[idx], |g, s| g * s * (1.0 - s));
                    accumulate(&mut adj, a, da);
                }
                Op::Tanh { a } => {
                    let a = *a;
                    let da = d.zip(&self.values[idx], |g, t| g * (1.0 - t * t));
                    accumulate(&mut adj, a, da);
                }
                Op::Square { a } => {
                    let a = *a;
                    let da = d.zip(&self.values[a.0], |g, x| g * 2.0 * x);
                    accumulate(&mut adj, a, da);
                }
                Op::ScalarMul { a, c } => {
                    let (a, c) = (*a, *c);
                    accumulate(&mut adj, a, d.scale(c));
                }
                Op::AddScalar { a } => {
                    let a = *a;
                    accumulate(&mut adj, a, d);
                }
                Op::SumAll { a } => {
                    let a = *a;
                    let g = d.item();
                    let da = Tensor::full(self.values[a.0].shape(), g);
                    accumulate(&mut adj, a, da);
                }
                Op::MeanAll { a } => {
                    let a = *a;
                    let n_el = self.values[a.0].numel().max(1) as f32;
                    let da = Tensor::full(self.values[a.0].shape(), d.item() / n_el);
                    accumulate(&mut adj, a, da);
                }
                Op::SumColsKeep { a } => {
                    let a = *a;
                    let (m, n_cols) = self.values[a.0].matrix_dims();
                    let mut da = Tensor::zeros([m, n_cols]);
                    for i in 0..m {
                        let g = d.data()[i];
                        for j in 0..n_cols {
                            *da.at_mut(i, j) = g;
                        }
                    }
                    accumulate(&mut adj, a, da);
                }
                Op::SumRowsKeep { a } => {
                    let a = *a;
                    let (m, n_cols) = self.values[a.0].matrix_dims();
                    let mut da = Tensor::zeros([m, n_cols]);
                    for i in 0..m {
                        for j in 0..n_cols {
                            *da.at_mut(i, j) = d.data()[j];
                        }
                    }
                    accumulate(&mut adj, a, da);
                }
                Op::ConcatCols { parts } => {
                    let parts = parts.clone();
                    let mut start = 0usize;
                    for p in parts {
                        let w = self.values[p.0].matrix_dims().1;
                        let dp = d.slice_cols(start, w);
                        start += w;
                        accumulate(&mut adj, p, dp);
                    }
                }
                Op::SliceCols { a, start, len } => {
                    let (a, start, len) = (*a, *start, *len);
                    let (m, n_cols) = self.values[a.0].matrix_dims();
                    let mut da = Tensor::zeros([m, n_cols]);
                    for i in 0..m {
                        for j in 0..len {
                            *da.at_mut(i, start + j) = d.at(i, j);
                        }
                    }
                    accumulate(&mut adj, a, da);
                }
                Op::SoftmaxRows { a } => {
                    let a = *a;
                    let y = &self.values[idx];
                    let (m, n_cols) = y.matrix_dims();
                    let mut da = Tensor::zeros([m, n_cols]);
                    for i in 0..m {
                        let mut dot = 0.0f32;
                        for j in 0..n_cols {
                            dot += d.at(i, j) * y.at(i, j);
                        }
                        for j in 0..n_cols {
                            *da.at_mut(i, j) = y.at(i, j) * (d.at(i, j) - dot);
                        }
                    }
                    accumulate(&mut adj, a, da);
                }
                Op::NormalizeRows { a, inv_std } => {
                    let a = *a;
                    let da = d.mul_row_broadcast(inv_std);
                    accumulate(&mut adj, a, da);
                }
                Op::Dropout { a, mask } => {
                    let a = *a;
                    let da = d.mul(mask);
                    accumulate(&mut adj, a, da);
                }
                Op::BceWithLogitsMean { logits, labels } => {
                    let logits = *logits;
                    let n_el = self.values[logits.0].numel().max(1) as f32;
                    let scale = d.item() / n_el;
                    let z = &self.values[logits.0];
                    let da_data: Vec<f32> = z
                        .data()
                        .iter()
                        .zip(labels.data())
                        .map(|(&zi, &yi)| scale * (stable_sigmoid(zi) - yi))
                        .collect();
                    let da = Tensor::from_vec(z.shape(), da_data);
                    accumulate(&mut adj, logits, da);
                }
                Op::Reshape { a } => {
                    let a = *a;
                    let da = d.reshape(self.values[a.0].shape());
                    accumulate(&mut adj, a, da);
                }
            }
        }
        grads
    }
}

fn accumulate(adj: &mut [Option<Tensor>], v: Var, d: Tensor) {
    match &mut adj[v.0] {
        Some(existing) => existing.axpy(1.0, &d),
        slot => *slot = Some(d),
    }
}

fn accumulate_param(grads: &mut HashMap<usize, Tensor>, param: usize, d: Tensor) {
    match grads.get_mut(&param) {
        Some(existing) => existing.axpy(1.0, &d),
        None => {
            grads.insert(param, d);
        }
    }
}

fn reshape_like(t: Tensor, like: &Tensor) -> Tensor {
    t.reshape(like.shape())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_tensor::rng::seeded;

    #[test]
    fn linear_layer_grads() {
        // y = x @ w + b; loss = sum(y)
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]));
        let w = tape.param(0, Tensor::from_vec([2, 2], vec![1., 0., 0., 1.]));
        let b = tape.param(1, Tensor::from_vec([2], vec![0.5, -0.5]));
        let xw = tape.matmul(x, w);
        let y = tape.add_row(xw, b);
        let loss = tape.sum_all(y);
        assert_eq!(tape.value(loss).item(), 1. + 2. + 3. + 4. + 2.0 * 0.0);
        let grads = tape.backward(loss);
        // dW = xᵀ @ 1 = column sums of x replicated
        assert_eq!(grads[&0].data(), &[4., 4., 6., 6.]);
        // db = batch size per output
        assert_eq!(grads[&1].data(), &[2., 2.]);
    }

    #[test]
    fn gather_scatter_grads() {
        let mut tape = Tape::new();
        let table = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let e = tape.gather_param(7, &table, &[2, 0, 2]);
        let loss = tape.sum_all(e);
        let grads = tape.backward(loss);
        assert_eq!(grads[&7].shape(), &[3, 2]);
        assert_eq!(grads[&7].data(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn bce_loss_and_grad() {
        let mut tape = Tape::new();
        let logits = tape.param(0, Tensor::from_vec([2], vec![0.0, 10.0]));
        let labels = Tensor::from_vec([2], vec![1.0, 1.0]);
        let loss = tape.bce_with_logits_mean(logits, labels);
        // loss = (ln 2 + ~0)/2
        assert!((tape.value(loss).item() - 0.5 * std::f32::consts::LN_2).abs() < 1e-3);
        let grads = tape.backward(loss);
        // grad = (σ(z) - y)/n
        assert!((grads[&0].data()[0] - (0.5 - 1.0) / 2.0).abs() < 1e-6);
        assert!(grads[&0].data()[1].abs() < 1e-3);
    }

    #[test]
    fn sigmoid_tanh_relu_square_values() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]));
        let r = tape.relu(x);
        assert_eq!(tape.value(r).data(), &[0.0, 0.0, 2.0]);
        let s = tape.sigmoid(x);
        assert!((tape.value(s).data()[1] - 0.5).abs() < 1e-6);
        let t = tape.tanh(x);
        assert!((tape.value(t).data()[2] - 2.0f32.tanh()).abs() < 1e-6);
        let q = tape.square(x);
        assert_eq!(tape.value(q).data(), &[1.0, 0.0, 4.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // loss = sum(x*x_param) + sum(x_param) touches the param twice
        let mut tape = Tape::new();
        let w = tape.param(0, Tensor::from_vec([2], vec![3.0, 4.0]));
        let sq = tape.square(w);
        let s1 = tape.sum_all(sq);
        let s2 = tape.sum_all(w);
        let loss = tape.add(s1, s2);
        let grads = tape.backward(loss);
        // d/dw (w² + w) = 2w + 1
        assert_eq!(grads[&0].data(), &[7.0, 9.0]);
    }

    #[test]
    fn softmax_rows_grad_is_zero_for_uniform_upstream() {
        // Softmax outputs sum to 1 per row, so gradient of sum(softmax) wrt
        // input is exactly zero.
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::from_vec([2, 3], vec![0.3, -1.0, 2.0, 0.0, 0.0, 0.0]));
        let s = tape.softmax_rows(x);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert!(grads[&0].norm() < 1e-6);
    }

    #[test]
    fn normalize_rows_zero_mean_unit_var() {
        let mut tape = Tape::new();
        let mut rng = seeded(5);
        let x = tape.leaf(Tensor::randn(&mut rng, [64, 4], 3.0, 2.0));
        let z = tape.normalize_rows(x, 1e-5);
        let zt = tape.value(z);
        let col_mean = zt.sum_rows().scale(1.0 / 64.0);
        assert!(col_mean.norm() < 1e-4, "col means {:?}", col_mean);
        let (m, n) = zt.matrix_dims();
        for j in 0..n {
            let mut var = 0.0;
            for i in 0..m {
                var += zt.at(i, j) * zt.at(i, j);
            }
            var /= m as f32;
            assert!((var - 1.0).abs() < 1e-2, "var {}", var);
        }
    }

    #[test]
    fn dropout_mask_routes_gradient() {
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::from_vec([4], vec![1., 1., 1., 1.]));
        let mask = Tensor::from_vec([4], vec![2.0, 0.0, 2.0, 0.0]);
        let y = tape.dropout(x, mask.clone());
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads[&0].data(), mask.data());
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::ones([2, 2]));
        tape.backward(x);
    }
}
