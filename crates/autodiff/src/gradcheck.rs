//! Finite-difference gradient checking.
//!
//! Every backward rule in [`crate::tape`] is validated by comparing the
//! analytic gradient against central finite differences of the forward pass.
//! This is the safety net that lets the rest of the workspace trust the
//! substrate: an error in any rule shows up here, not as a mysteriously
//! underperforming model three crates up.

use crate::tape::{Tape, Var};
use mamdr_tensor::Tensor;
use std::collections::HashMap;

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Parameter index checked.
    pub param: usize,
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitude, floored at 1).
    pub max_rel_err: f32,
}

/// Checks the analytic gradient of `forward` against central differences.
///
/// `forward` must build a scalar loss from the supplied parameter tensors
/// (registering them with [`Tape::param`] / [`Tape::gather_param`] under
/// index = position in `params`). Returns one report per parameter.
pub fn check_gradients(
    params: &[Tensor],
    eps: f32,
    forward: impl Fn(&mut Tape, &[Tensor]) -> Var,
) -> Vec<CheckReport> {
    // Analytic gradients.
    let mut tape = Tape::new();
    let loss = forward(&mut tape, params);
    let analytic: HashMap<usize, Tensor> = tape.backward(loss);

    let mut reports = Vec::with_capacity(params.len());
    for (pi, p) in params.iter().enumerate() {
        let grad = analytic.get(&pi).cloned().unwrap_or_else(|| Tensor::zeros(p.shape()));
        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        for ei in 0..p.numel() {
            let mut plus = params.to_vec();
            plus[pi].data_mut()[ei] += eps;
            let mut tp = Tape::new();
            let lp = forward(&mut tp, &plus);
            let fp = tp.value(lp).item();

            let mut minus = params.to_vec();
            minus[pi].data_mut()[ei] -= eps;
            let mut tm = Tape::new();
            let lm = forward(&mut tm, &minus);
            let fm = tm.value(lm).item();

            let numeric = (fp - fm) / (2.0 * eps);
            let a = grad.data()[ei];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
        reports.push(CheckReport { param: pi, max_abs_err: max_abs, max_rel_err: max_rel });
    }
    reports
}

/// Asserts that every parameter's analytic gradient matches finite
/// differences within `tol` relative error.
pub fn assert_gradients_match(
    params: &[Tensor],
    eps: f32,
    tol: f32,
    forward: impl Fn(&mut Tape, &[Tensor]) -> Var,
) {
    for report in check_gradients(params, eps, forward) {
        assert!(
            report.max_rel_err < tol,
            "gradient check failed for param {}: max_rel_err={} max_abs_err={}",
            report.param,
            report.max_rel_err,
            report.max_abs_err
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_tensor::rng::seeded;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn randn(seed: u64, shape: &[usize]) -> Tensor {
        Tensor::randn(&mut seeded(seed), shape, 0.0, 0.7)
    }

    #[test]
    fn mlp_stack_gradcheck() {
        // Two dense layers with relu + sigmoid + bce: the canonical model path.
        let params = vec![randn(1, &[3, 4]), randn(2, &[4]), randn(3, &[4, 1]), randn(4, &[1])];
        let x = randn(9, &[5, 3]);
        let labels = Tensor::from_vec([5], vec![1., 0., 1., 0., 1.]);
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let xin = tape.leaf(x.clone());
            let w1 = tape.param(0, ps[0].clone());
            let b1 = tape.param(1, ps[1].clone());
            let w2 = tape.param(2, ps[2].clone());
            let b2 = tape.param(3, ps[3].clone());
            let h = tape.matmul(xin, w1);
            let h = tape.add_row(h, b1);
            let h = tape.relu(h);
            let z = tape.matmul(h, w2);
            let z = tape.add_row(z, b2);
            let z = tape.reshape(z, &[5]);
            tape.bce_with_logits_mean(z, labels.clone())
        });
    }

    #[test]
    fn elementwise_ops_gradcheck() {
        let params = vec![randn(5, &[2, 3]), randn(6, &[2, 3])];
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let a = tape.param(0, ps[0].clone());
            let b = tape.param(1, ps[1].clone());
            let s = tape.mul(a, b);
            let t = tape.sub(s, b);
            let u = tape.tanh(t);
            let v = tape.square(u);
            let w = tape.sigmoid(v);
            tape.mean_all(w)
        });
    }

    #[test]
    fn broadcast_ops_gradcheck() {
        let params = vec![randn(7, &[4, 3]), randn(8, &[3]), randn(9, &[4])];
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let m = tape.param(0, ps[0].clone());
            let row = tape.param(1, ps[1].clone());
            let col = tape.param(2, ps[2].clone());
            let a = tape.add_row(m, row);
            let b = tape.mul_col(a, col);
            let c = tape.scalar_mul(b, 0.5);
            let d = tape.add_scalar(c, 1.0);
            tape.sum_all(d)
        });
    }

    #[test]
    fn structural_ops_gradcheck() {
        let params = vec![randn(10, &[3, 2]), randn(11, &[3, 4])];
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let a = tape.param(0, ps[0].clone());
            let b = tape.param(1, ps[1].clone());
            let cat = tape.concat_cols(&[a, b]);
            let sl = tape.slice_cols(cat, 1, 4);
            let tr = tape.transpose(sl);
            let sq = tape.square(tr);
            let rows = tape.sum_rows_keep(sq);
            let cols = tape.sum_cols_keep(rows);
            tape.sum_all(cols)
        });
    }

    #[test]
    fn softmax_attention_gradcheck() {
        // A miniature attention readout: scores -> softmax -> weighted values.
        let params = vec![randn(12, &[4, 5]), randn(13, &[4, 5])];
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let scores = tape.param(0, ps[0].clone());
            let values = tape.param(1, ps[1].clone());
            let attn = tape.softmax_rows(scores);
            let mixed = tape.mul(attn, values);
            let picked = tape.sum_cols_keep(mixed);
            let sq = tape.square(picked);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn gather_gradcheck() {
        let params = vec![randn(14, &[6, 3])];
        let ids = vec![0u32, 5, 2, 5];
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let e = tape.gather_param(0, &ps[0], &ids);
            let sq = tape.square(e);
            tape.sum_all(sq)
        });
    }

    #[test]
    fn matmul_chain_gradcheck() {
        let params = vec![randn(15, &[3, 4]), randn(16, &[4, 2])];
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let a = tape.param(0, ps[0].clone());
            let b = tape.param(1, ps[1].clone());
            let c = tape.matmul(a, b);
            let s = tape.sigmoid(c);
            tape.sum_all(s)
        });
    }

    #[test]
    fn gemm_all_transpose_combinations_gradcheck() {
        // op(a) @ op(b) with m=3, k=4, n=2 — operand shapes depend on flags.
        for (lhs_t, rhs_t) in [(false, false), (false, true), (true, false), (true, true)] {
            let a_shape: &[usize] = if lhs_t { &[4, 3] } else { &[3, 4] };
            let b_shape: &[usize] = if rhs_t { &[2, 4] } else { &[4, 2] };
            let params = vec![randn(17, a_shape), randn(18, b_shape)];
            assert_gradients_match(&params, EPS, TOL, |tape, ps| {
                let a = tape.param(0, ps[0].clone());
                let b = tape.param(1, ps[1].clone());
                let c = tape.gemm(a, b, lhs_t, rhs_t);
                let s = tape.tanh(c);
                tape.mean_all(s)
            });
        }
    }

    #[test]
    fn fused_dense_gradcheck() {
        use mamdr_tensor::Act;
        let x = randn(19, &[5, 3]);
        for act in [Act::Linear, Act::Relu, Act::Sigmoid, Act::Tanh] {
            let params = vec![randn(20, &[3, 4]), randn(21, &[4])];
            assert_gradients_match(&params, EPS, TOL, |tape, ps| {
                let xin = tape.leaf(x.clone());
                let w = tape.param(0, ps[0].clone());
                let b = tape.param(1, ps[1].clone());
                let y = tape.dense(xin, w, Some(b), act);
                let sq = tape.square(y);
                tape.mean_all(sq)
            });
        }
        // Bias-less variant, and gradient flow into x through a param.
        let params = vec![randn(22, &[5, 3]), randn(23, &[3, 2])];
        assert_gradients_match(&params, EPS, TOL, |tape, ps| {
            let xin = tape.param(0, ps[0].clone());
            let w = tape.param(1, ps[1].clone());
            let y = tape.dense(xin, w, None, mamdr_tensor::Act::Relu);
            tape.mean_all(y)
        });
    }

    #[test]
    fn fused_dense_matches_unfused_chain_exactly() {
        use mamdr_tensor::Act;
        let x = randn(24, &[6, 3]);
        let w = randn(25, &[3, 4]);
        let b = randn(26, &[4]);

        let mut fused = Tape::new();
        let xf = fused.leaf(x.clone());
        let wf = fused.param(0, w.clone());
        let bf = fused.param(1, b.clone());
        let yf = fused.dense(xf, wf, Some(bf), Act::Sigmoid);
        let lf = fused.sum_all(yf);
        let gf = fused.backward(lf);

        let mut plain = Tape::new();
        let xp = plain.leaf(x);
        let wp = plain.param(0, w);
        let bp = plain.param(1, b);
        let zp = plain.matmul(xp, wp);
        let zp = plain.add_row(zp, bp);
        let yp = plain.sigmoid(zp);
        let lp = plain.sum_all(yp);
        let gp = plain.backward(lp);

        assert_eq!(fused.value(yf), plain.value(yp), "fused forward differs");
        assert_eq!(gf[&0], gp[&0], "fused dw differs");
        assert_eq!(gf[&1], gp[&1], "fused db differs");
    }
}
