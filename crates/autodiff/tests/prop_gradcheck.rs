//! Property-based gradient checking: random parameter values through
//! representative graph shapes must always match finite differences.

use mamdr_autodiff::gradcheck::assert_gradients_match;
use mamdr_tensor::Tensor;
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 3e-2;

fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |data| Tensor::from_vec([rows, cols], data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_relu_chain(w in tensor(3, 2), b in tensor(1, 2), x in tensor(4, 3)) {
        let b = b.reshape([2]);
        assert_gradients_match(&[w, b], EPS, TOL, |tape, ps| {
            let xin = tape.leaf(x.clone());
            let w = tape.param(0, ps[0].clone());
            let b = tape.param(1, ps[1].clone());
            let h = tape.matmul(xin, w);
            let h = tape.add_row(h, b);
            let h = tape.relu(h);
            let s = tape.square(h);
            tape.mean_all(s)
        });
    }

    #[test]
    fn mul_sub_sigmoid_chain(a in tensor(3, 3), b in tensor(3, 3)) {
        assert_gradients_match(&[a, b], EPS, TOL, |tape, ps| {
            let a = tape.param(0, ps[0].clone());
            let b = tape.param(1, ps[1].clone());
            let m = tape.mul(a, b);
            let d = tape.sub(m, a);
            let s = tape.sigmoid(d);
            tape.sum_all(s)
        });
    }

    #[test]
    fn softmax_mixture(scores in tensor(3, 4), values in tensor(3, 4)) {
        assert_gradients_match(&[scores, values], EPS, TOL, |tape, ps| {
            let s = tape.param(0, ps[0].clone());
            let v = tape.param(1, ps[1].clone());
            let attn = tape.softmax_rows(s);
            let mixed = tape.mul(attn, v);
            let pooled = tape.sum_cols_keep(mixed);
            let sq = tape.square(pooled);
            tape.mean_all(sq)
        });
    }

    #[test]
    fn bce_loss(logits in tensor(1, 6), label_bits in 0u8..64) {
        let logits = logits.reshape([6]);
        let labels = Tensor::from_vec(
            [6],
            (0..6).map(|i| f32::from((label_bits >> i) & 1)).collect::<Vec<f32>>(),
        );
        assert_gradients_match(&[logits], EPS, TOL, |tape, ps| {
            let z = tape.param(0, ps[0].clone());
            tape.bce_with_logits_mean(z, labels.clone())
        });
    }

    #[test]
    fn structural_mix(a in tensor(2, 3), b in tensor(2, 2)) {
        assert_gradients_match(&[a, b], EPS, TOL, |tape, ps| {
            let a = tape.param(0, ps[0].clone());
            let b = tape.param(1, ps[1].clone());
            let cat = tape.concat_cols(&[a, b]);
            let sl = tape.slice_cols(cat, 1, 3);
            let t = tape.tanh(sl);
            let tr = tape.transpose(t);
            let sm = tape.scalar_mul(tr, 1.5);
            let sa = tape.add_scalar(sm, -0.25);
            tape.sum_all(sa)
        });
    }

    #[test]
    fn gather_square_sum(table in tensor(5, 2), raw_ids in proptest::collection::vec(0u32..5, 1..8)) {
        assert_gradients_match(&[table], EPS, TOL, |tape, ps| {
            let e = tape.gather_param(0, &ps[0], &raw_ids);
            let sq = tape.square(e);
            tape.sum_all(sq)
        });
    }
}
