//! Property-based tests of the MDR dataset generator: every configuration
//! in a broad random family must yield a valid dataset that honors its
//! spec (CTR ratios, split fractions, id ranges, determinism).

use mamdr_data::{DomainSpec, GeneratorConfig, Split};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        20usize..150,                                                  // users
        10usize..80,                                                   // items
        0.0f32..1.0,                                                   // conflict
        proptest::collection::vec((100usize..600, 0.2f32..0.5), 1..4), // domains
        0u64..500,                                                     // seed
        prop_oneof![Just(0usize), Just(4usize)],                       // dense dim
    )
        .prop_map(|(users, items, conflict, domains, seed, dense)| {
            let mut cfg = GeneratorConfig::base("prop", users, items, seed);
            cfg.conflict = conflict;
            cfg.dense_dim = dense;
            cfg.domains = domains
                .into_iter()
                .enumerate()
                .map(|(i, (n, ctr))| DomainSpec::new(format!("d{i}"), n, ctr))
                .collect();
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_datasets_are_valid(cfg in config_strategy()) {
        let ds = cfg.generate();
        ds.validate(); // panics on any structural violation
        prop_assert_eq!(ds.n_domains(), cfg.domains.len());
        prop_assert_eq!(ds.dense_dim(), cfg.dense_dim);
    }

    #[test]
    fn ctr_ratio_tracks_spec(cfg in config_strategy()) {
        let ds = cfg.generate();
        for (dom, spec) in ds.domains.iter().zip(&cfg.domains) {
            let total: f32 = dom.len() as f32;
            prop_assume!(total > 50.0); // tiny domains are too noisy to assert on
            let pos: f32 = [Split::Train, Split::Val, Split::Test]
                .iter()
                .flat_map(|&s| dom.split(s))
                .map(|i| i.label)
                .sum();
            let expect = spec.ctr_ratio / (1.0 + spec.ctr_ratio);
            prop_assert!(
                ((pos / total) - expect).abs() < 0.07,
                "domain {}: {} vs {}",
                dom.name, pos / total, expect
            );
        }
    }

    #[test]
    fn generation_is_pure(cfg in config_strategy()) {
        let a = cfg.generate();
        let b = cfg.generate();
        for (da, db) in a.domains.iter().zip(&b.domains) {
            prop_assert_eq!(&da.train, &db.train);
            prop_assert_eq!(&da.val, &db.val);
            prop_assert_eq!(&da.test, &db.test);
        }
        prop_assert_eq!(a.user_group, b.user_group);
    }

    #[test]
    fn splits_are_disjoint_and_cover(cfg in config_strategy()) {
        let ds = cfg.generate();
        for dom in &ds.domains {
            let n = dom.len();
            prop_assert_eq!(dom.train.len() + dom.val.len() + dom.test.len(), n);
            // No (user, item) pair may appear in two splits (leakage).
            use std::collections::HashSet;
            let train: HashSet<(u32, u32)> = dom.train.iter().map(|i| (i.user, i.item)).collect();
            let val: HashSet<(u32, u32)> = dom.val.iter().map(|i| (i.user, i.item)).collect();
            let test: HashSet<(u32, u32)> = dom.test.iter().map(|i| (i.user, i.item)).collect();
            prop_assert!(train.is_disjoint(&val), "train/val leak in {}", dom.name);
            prop_assert!(train.is_disjoint(&test), "train/test leak in {}", dom.name);
            prop_assert!(val.is_disjoint(&test), "val/test leak in {}", dom.name);
        }
    }

    #[test]
    fn batching_covers_split_once(cfg in config_strategy(), bs in 8usize..64) {
        let ds = cfg.generate();
        let mut rng = mamdr_tensor::rng::seeded(1);
        let batches = mamdr_data::batches_for_domain(
            &ds, 0, Split::Train, mamdr_data::BatchPlan::train(bs), &mut rng,
        );
        let total: usize = batches.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, ds.domains[0].train.len());
        for b in &batches {
            prop_assert!(b.len() <= bs);
            prop_assert_eq!(b.users.len(), b.labels.len());
        }
    }
}
