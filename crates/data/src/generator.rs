//! The ground-truth click model and the synthetic dataset generator.
//!
//! Each dataset is generated from a latent-factor ground truth:
//!
//! ```text
//! score(u, v, d) = s · (z_uᵀ A_d z_v) / dim + b_d
//! A_d = (1 − conflict) · A_shared + conflict · A_d_random
//! ```
//!
//! Users and items keep *shared* latent vectors across domains (overlapping
//! populations), while `A_d` rotates what "a good match" means per domain.
//! The `conflict` knob interpolates between a single global task
//! (`conflict = 0`) and fully independent tasks (`conflict = 1`); it is the
//! direct analogue of the gradient-conflict phenomenon in paper §III-B and
//! is measured explicitly by the `conflict` benchmark binary.
//!
//! Labels are assigned by ranking noisy scores within each domain and
//! marking the top `ctr/(1+ctr)` fraction positive (then flipping a small
//! fraction for irreducible noise), which reproduces the paper's per-domain
//! CTR ratios (Eq. 23) exactly.

use crate::types::{DomainData, Interaction, MdrDataset};
use mamdr_tensor::rng::{derive_seed, normal, seeded, shuffle, weighted_index};
use mamdr_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Specification of one domain to generate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Domain name.
    pub name: String,
    /// Total interactions to generate (before the train/val/test split).
    pub n_samples: usize,
    /// Positive/negative ratio (paper Eq. 23).
    pub ctr_ratio: f32,
    /// Fraction of the global user population active in this domain.
    pub user_frac: f64,
    /// Fraction of the global item population available in this domain.
    pub item_frac: f64,
}

impl DomainSpec {
    /// A spec with the default 40% user / 30% item participation.
    pub fn new(name: impl Into<String>, n_samples: usize, ctr_ratio: f32) -> Self {
        DomainSpec { name: name.into(), n_samples, ctr_ratio, user_frac: 0.4, item_frac: 0.3 }
    }
}

/// Full configuration for dataset generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Dataset name.
    pub name: String,
    /// Global user count.
    pub n_users: usize,
    /// Global item count.
    pub n_items: usize,
    /// Number of user-group side-feature values.
    pub n_user_groups: usize,
    /// Number of item-category side-feature values.
    pub n_item_cats: usize,
    /// Latent dimensionality of the ground truth.
    pub latent_dim: usize,
    /// Domain-conflict strength in `[0, 1]`.
    pub conflict: f32,
    /// Std of the Gaussian noise added to scores before ranking.
    pub score_noise: f32,
    /// Probability of flipping a label after assignment.
    pub label_noise: f32,
    /// Width of the frozen dense side features (0 disables them).
    pub dense_dim: usize,
    /// Train/val/test fractions (must sum to 1).
    pub split: (f64, f64, f64),
    /// Domains to generate.
    pub domains: Vec<DomainSpec>,
    /// Master seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A reasonable starting configuration with no domains.
    pub fn base(name: impl Into<String>, n_users: usize, n_items: usize, seed: u64) -> Self {
        GeneratorConfig {
            name: name.into(),
            n_users,
            n_items,
            n_user_groups: 8,
            n_item_cats: 16,
            latent_dim: 8,
            conflict: 0.5,
            score_noise: 0.4,
            label_noise: 0.02,
            dense_dim: 0,
            split: (0.6, 0.2, 0.2),
            domains: Vec::new(),
            seed,
        }
    }

    /// Generates the dataset (deterministic in `self.seed`).
    pub fn generate(&self) -> MdrDataset {
        assert!(!self.domains.is_empty(), "config declares no domains");
        assert!(
            (self.split.0 + self.split.1 + self.split.2 - 1.0).abs() < 1e-9,
            "split fractions must sum to 1"
        );
        let truth = GroundTruth::new(self);
        let mut rng = seeded(derive_seed(self.seed, 1));

        // Side features derived from the latents so they carry signal.
        let user_group = categorical_from_latents(
            &truth.user_latent,
            self.n_user_groups,
            &mut seeded(derive_seed(self.seed, 2)),
        );
        let item_cat = categorical_from_latents(
            &truth.item_latent,
            self.n_item_cats,
            &mut seeded(derive_seed(self.seed, 3)),
        );

        let (dense_user, dense_item) = if self.dense_dim > 0 {
            let mut frng = seeded(derive_seed(self.seed, 4));
            (
                Some(dense_from_latents(&truth.user_latent, self.dense_dim, &mut frng)),
                Some(dense_from_latents(&truth.item_latent, self.dense_dim, &mut frng)),
            )
        } else {
            (None, None)
        };

        let domains = self
            .domains
            .iter()
            .enumerate()
            .map(|(di, spec)| self.generate_domain(di, spec, &truth, &mut rng))
            .collect();

        let ds = MdrDataset {
            name: self.name.clone(),
            n_users: self.n_users,
            n_items: self.n_items,
            n_user_groups: self.n_user_groups,
            n_item_cats: self.n_item_cats,
            user_group,
            item_cat,
            dense_user,
            dense_item,
            domains,
        };
        ds.validate();
        ds
    }

    fn generate_domain(
        &self,
        domain_idx: usize,
        spec: &DomainSpec,
        truth: &GroundTruth,
        rng: &mut impl Rng,
    ) -> DomainData {
        // Domain sub-populations: random subsets of the global users/items.
        let users = sample_subset(rng, self.n_users, spec.user_frac);
        let items = sample_subset(rng, self.n_items, spec.item_frac);

        // Zipf-ish popularity over the domain's items.
        let item_pop: Vec<f64> =
            (0..items.len()).map(|i| 1.0 / (i as f64 + 1.0).powf(0.8)).collect();

        // Sample candidate pairs (deduplicated).
        let target = spec.n_samples;
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target * 2);
        let mut pairs: Vec<(u32, u32, f32)> = Vec::with_capacity(target);
        let mut attempts = 0usize;
        let max_attempts = target * 20 + 1000;
        while pairs.len() < target && attempts < max_attempts {
            attempts += 1;
            let u = users[rng.gen_range(0..users.len())];
            let v = items[weighted_index(rng, &item_pop)];
            if !seen.insert((u, v)) {
                continue;
            }
            let s = truth.score(domain_idx, u, v) + self.score_noise * normal(rng);
            pairs.push((u, v, s));
        }

        // Rank by noisy score; the top ctr/(1+ctr) fraction clicks.
        let n = pairs.len();
        let n_pos =
            ((spec.ctr_ratio as f64 / (1.0 + spec.ctr_ratio as f64)) * n as f64).round() as usize;
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        let mut interactions: Vec<Interaction> = pairs
            .into_iter()
            .enumerate()
            .map(|(rank, (u, v, _))| {
                let mut label = if rank < n_pos { 1.0 } else { 0.0 };
                if self.label_noise > 0.0 && rng.gen::<f32>() < self.label_noise {
                    label = 1.0 - label;
                }
                Interaction { user: u, item: v, label }
            })
            .collect();
        shuffle(rng, &mut interactions);

        let n_train = (self.split.0 * n as f64).round() as usize;
        let n_val = (self.split.1 * n as f64).round() as usize;
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        let test = interactions.split_off(n_train + n_val);
        let val = interactions.split_off(n_train);
        DomainData {
            name: spec.name.clone(),
            train: interactions,
            val,
            test,
            ctr_ratio: spec.ctr_ratio,
        }
    }
}

/// The generative click model behind a dataset.
///
/// Kept public so tests and the conflict probe can query oracle scores.
pub struct GroundTruth {
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// User latent factors `[n_users, dim]` (shared across domains).
    pub user_latent: Tensor,
    /// Item latent factors `[n_items, dim]`.
    pub item_latent: Tensor,
    /// Per-domain mixing matrices `[dim, dim]`.
    pub domain_transform: Vec<Tensor>,
    /// Per-domain score offsets.
    pub domain_bias: Vec<f32>,
    /// Score sharpness multiplier.
    pub sharpness: f32,
}

impl GroundTruth {
    /// Draws a ground truth for `config`.
    pub fn new(config: &GeneratorConfig) -> Self {
        let d = config.latent_dim;
        let mut rng = seeded(derive_seed(config.seed, 0));
        let user_latent = Tensor::randn(&mut rng, [config.n_users, d], 0.0, 1.0);
        let item_latent = Tensor::randn(&mut rng, [config.n_items, d], 0.0, 1.0);
        let shared = Tensor::randn(&mut rng, [d, d], 0.0, 1.0);
        let c = config.conflict;
        let domain_transform = (0..config.domains.len())
            .map(|_| {
                let own = Tensor::randn(&mut rng, [d, d], 0.0, 1.0);
                // Renormalize so score variance does not depend on `conflict`.
                let norm = ((1.0 - c) * (1.0 - c) + c * c).sqrt().max(1e-6);
                shared.scale((1.0 - c) / norm).add(&own.scale(c / norm))
            })
            .collect();
        let domain_bias = (0..config.domains.len()).map(|_| 0.3 * normal(&mut rng)).collect();
        GroundTruth {
            latent_dim: d,
            user_latent,
            item_latent,
            domain_transform,
            domain_bias,
            sharpness: 3.0,
        }
    }

    /// Oracle affinity score of `(user, item)` under `domain`.
    pub fn score(&self, domain: usize, user: u32, item: u32) -> f32 {
        let d = self.latent_dim;
        let zu = self.user_latent.row(user as usize);
        let zv = self.item_latent.row(item as usize);
        let a = &self.domain_transform[domain];
        // z_uᵀ A z_v
        let mut acc = 0.0f32;
        for (i, &u) in zu.iter().enumerate() {
            let mut row = 0.0f32;
            for (j, &v) in zv.iter().enumerate() {
                row += a.at(i, j) * v;
            }
            acc += u * row;
        }
        self.sharpness * acc / d as f32 + self.domain_bias[domain]
    }
}

/// Samples `frac` of `0..n` without replacement (at least 2 elements).
fn sample_subset(rng: &mut impl Rng, n: usize, frac: f64) -> Vec<u32> {
    let k = ((n as f64 * frac).round() as usize).clamp(2.min(n), n);
    let mut all: Vec<u32> = (0..n as u32).collect();
    shuffle(rng, &mut all);
    all.truncate(k);
    all
}

/// Derives a categorical side feature correlated with the latents:
/// `argmax(z W)` over `k` random directions.
fn categorical_from_latents(latents: &Tensor, k: usize, rng: &mut impl Rng) -> Vec<u32> {
    let (n, d) = latents.matrix_dims();
    let proj = Tensor::randn(rng, [d, k], 0.0, 1.0);
    let scores = latents.matmul(&proj);
    (0..n)
        .map(|i| {
            let row = scores.row(i);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best as u32
        })
        .collect()
}

/// Frozen dense features: noisy random projection of the latents (the
/// GraphSage-feature stand-in for Taobao-style presets).
fn dense_from_latents(latents: &Tensor, dim: usize, rng: &mut impl Rng) -> Tensor {
    let (n, d) = latents.matrix_dims();
    let proj = Tensor::randn(rng, [d, dim], 0.0, (1.0 / d as f32).sqrt());
    let mut out = latents.matmul(&proj);
    for x in out.data_mut() {
        *x += 0.1 * normal(rng);
    }
    out.reshape([n, dim])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Split;

    fn small_config() -> GeneratorConfig {
        let mut cfg = GeneratorConfig::base("test", 200, 100, 42);
        cfg.domains = vec![DomainSpec::new("a", 1000, 0.25), DomainSpec::new("b", 400, 0.5)];
        cfg
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let d1 = cfg.generate();
        let d2 = cfg.generate();
        assert_eq!(d1.domains[0].train, d2.domains[0].train);
        assert_eq!(d1.user_group, d2.user_group);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_config();
        let d1 = cfg.generate();
        cfg.seed = 43;
        let d2 = cfg.generate();
        assert_ne!(d1.domains[0].train, d2.domains[0].train);
    }

    #[test]
    fn ctr_ratio_is_respected() {
        let cfg = small_config();
        let ds = cfg.generate();
        for (dom, spec) in ds.domains.iter().zip(&cfg.domains) {
            let total = dom.len() as f32;
            let pos: f32 = [Split::Train, Split::Val, Split::Test]
                .iter()
                .flat_map(|&s| dom.split(s))
                .map(|i| i.label)
                .sum();
            let expect = spec.ctr_ratio / (1.0 + spec.ctr_ratio);
            let got = pos / total;
            // label noise flips ~2%, so allow a loose band
            assert!(
                (got - expect).abs() < 0.05,
                "domain {}: positive rate {} vs expected {}",
                dom.name,
                got,
                expect
            );
        }
    }

    #[test]
    fn split_sizes_match_fractions() {
        let cfg = small_config();
        let ds = cfg.generate();
        let d = &ds.domains[0];
        let n = d.len() as f64;
        assert!((d.train.len() as f64 / n - 0.6).abs() < 0.02);
        assert!((d.val.len() as f64 / n - 0.2).abs() < 0.02);
        assert!((d.test.len() as f64 / n - 0.2).abs() < 0.02);
    }

    #[test]
    fn domains_share_users() {
        // With 40% participation each, two domains of a 200-user population
        // should overlap substantially — the MDR premise.
        let cfg = small_config();
        let ds = cfg.generate();
        let users_a: HashSet<u32> = ds.domains[0].train.iter().map(|i| i.user).collect();
        let users_b: HashSet<u32> = ds.domains[1].train.iter().map(|i| i.user).collect();
        let shared = users_a.intersection(&users_b).count();
        assert!(shared > 5, "expected overlapping users, got {}", shared);
        assert!(users_a.len() < 200, "domain should not cover every user");
    }

    #[test]
    fn oracle_scores_are_learnable_signal() {
        // Positive pairs must have higher mean oracle score than negatives —
        // otherwise no model could do better than chance.
        let cfg = small_config();
        let ds = cfg.generate();
        let truth = GroundTruth::new(&cfg);
        for (di, dom) in ds.domains.iter().enumerate() {
            let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0usize, 0.0f64, 0usize);
            for it in &dom.train {
                let s = truth.score(di, it.user, it.item) as f64;
                if it.label > 0.5 {
                    pos_sum += s;
                    pos_n += 1;
                } else {
                    neg_sum += s;
                    neg_n += 1;
                }
            }
            assert!(
                pos_sum / pos_n as f64 > neg_sum / neg_n as f64 + 0.1,
                "domain {} lacks signal",
                dom.name
            );
        }
    }

    #[test]
    fn conflict_zero_gives_identical_transforms() {
        let mut cfg = small_config();
        cfg.conflict = 0.0;
        let truth = GroundTruth::new(&cfg);
        let diff = truth.domain_transform[0].max_abs_diff(&truth.domain_transform[1]);
        assert!(diff < 1e-6, "transforms should coincide at conflict=0, diff {}", diff);
    }

    #[test]
    fn conflict_one_gives_independent_transforms() {
        let mut cfg = small_config();
        cfg.conflict = 1.0;
        let truth = GroundTruth::new(&cfg);
        let diff = truth.domain_transform[0].max_abs_diff(&truth.domain_transform[1]);
        assert!(diff > 0.5, "transforms should differ at conflict=1, diff {}", diff);
    }

    #[test]
    fn dense_features_generated_when_requested() {
        let mut cfg = small_config();
        cfg.dense_dim = 6;
        let ds = cfg.generate();
        assert_eq!(ds.dense_dim(), 6);
        assert_eq!(ds.dense_user.as_ref().unwrap().shape(), &[200, 6]);
        assert_eq!(ds.dense_item.as_ref().unwrap().shape(), &[100, 6]);
    }
}
