//! Dataset presets mirroring the paper's benchmarks (Tables I–IV).
//!
//! Per-domain sample counts and CTR ratios are copied from the paper and
//! scaled down (Amazon by 1/200, Taobao by 1/10) so a full experiment table
//! regenerates on one machine in minutes. The `scale` argument multiplies
//! those defaults: `1.0` reproduces the documented sizes; benches use
//! smaller values for quick runs.

use crate::generator::{DomainSpec, GeneratorConfig};
use crate::types::MdrDataset;

/// Paper Table II: Amazon-6 sample counts (scaled 1/200) and CTR ratios.
const AMAZON6: &[(&str, usize, f32)] = &[
    ("Musical Instruments", 6_022, 0.22),
    ("Office Products", 19_606, 0.23),
    ("Patio Lawn and Garden", 15_126, 0.32),
    ("Prime Pantry", 3_474, 0.23),
    ("Toys and Games", 26_913, 0.47),
    ("Video Games", 13_494, 0.21),
];

/// Paper Table III: the seven extra (mostly sparse) Amazon-13 domains.
const AMAZON13_EXTRA: &[(&str, usize, f32)] = &[
    ("Arts Crafts and Sewing", 12_095, 0.22),
    ("Digital Music", 3_851, 0.23),
    ("Gift Cards", 60, 0.32),
    ("Industrial and Scientific", 1_902, 0.23),
    ("Luxury Beauty", 437, 0.47),
    ("Magazine Subscriptions", 66, 0.21),
    ("Software", 55, 0.30),
];

/// Paper Table IV: Taobao per-domain sample counts (scaled 1/10) and CTR
/// ratios, domains D1..D30.
const TAOBAO30: &[(usize, f32)] = &[
    (1_326, 0.22),
    (701, 0.23),
    (2_013, 0.32),
    (6_246, 0.23),
    (1_156, 0.47),
    (719, 0.21),
    (419, 0.36),
    (2_405, 0.30),
    (558, 0.46),
    (1_786, 0.25),
    (2_930, 0.30),
    (647, 0.30),
    (887, 0.27),
    (12_559, 0.20),
    (1_556, 0.33),
    (546, 0.23),
    (1_410, 0.38),
    (5_391, 0.22),
    (1_210, 0.29),
    (294, 0.33),
    (471, 0.47),
    (2_926, 0.23),
    (4_161, 0.24),
    (735, 0.44),
    (6_812, 0.21),
    (531, 0.47),
    (2_492, 0.37),
    (3_892, 0.28),
    (2_430, 0.45),
    (3_425, 0.43),
];

fn specs_from(table: &[(&str, usize, f32)], scale: f64) -> Vec<DomainSpec> {
    table
        .iter()
        .map(|&(name, n, ctr)| {
            DomainSpec::new(name, ((n as f64 * scale).round() as usize).max(20), ctr)
        })
        .collect()
}

/// The Amazon-6 benchmark: six relatively data-rich domains, no dense side
/// features (the paper randomly initializes Amazon embeddings).
pub fn amazon6(seed: u64, scale: f64) -> MdrDataset {
    let mut cfg = GeneratorConfig::base(
        "amazon-6",
        (2_229.0 * scale.sqrt()).round() as usize,
        (863.0 * scale.sqrt()).round() as usize,
        seed,
    );
    cfg.conflict = 0.35;
    cfg.dense_dim = 0;
    cfg.domains = specs_from(AMAZON6, scale);
    cfg.generate()
}

/// The Amazon-13 benchmark: Amazon-6 plus seven sparse domains that the
/// paper uses to demonstrate specific-parameter overfitting.
pub fn amazon13(seed: u64, scale: f64) -> MdrDataset {
    let mut cfg = GeneratorConfig::base(
        "amazon-13",
        (2_511.0 * scale.sqrt()).round() as usize,
        (1_077.0 * scale.sqrt()).round() as usize,
        seed,
    );
    cfg.conflict = 0.35;
    cfg.dense_dim = 0;
    let mut domains = specs_from(AMAZON6, scale);
    domains.extend(specs_from(AMAZON13_EXTRA, scale));
    cfg.domains = domains;
    cfg.generate()
}

/// Taobao-`n` for `n ∈ {10, 20, 30}` (the first `n` domains of Table IV),
/// with frozen dense features standing in for the paper's GraphSage
/// embeddings.
pub fn taobao(n_domains: usize, seed: u64, scale: f64) -> MdrDataset {
    assert!(matches!(n_domains, 10 | 20 | 30), "paper defines Taobao-10/20/30, got {}", n_domains);
    let (users, items) = match n_domains {
        10 => (2_378, 693),
        20 => (5_819, 1_632),
        _ => (9_914, 2_995),
    };
    // User/item counts shrink slower than sample counts (scale^0.3 vs
    // scale), preserving the paper's per-entity sparsity (~4 interactions
    // per user in the original Taobao logs) at reduced dataset sizes.
    let mut cfg = GeneratorConfig::base(
        format!("taobao-{n_domains}"),
        ((users as f64) * scale.sqrt()).round() as usize,
        ((items as f64) * scale.sqrt()).round() as usize,
        seed,
    );
    cfg.conflict = 0.35;
    cfg.dense_dim = 8;
    cfg.score_noise = 0.3;
    cfg.domains = TAOBAO30
        .iter()
        .take(n_domains)
        .enumerate()
        .map(|(i, &(n, ctr))| {
            let mut spec = DomainSpec::new(
                format!("D{}", i + 1),
                ((n as f64 * scale).round() as usize).max(20),
                ctr,
            );
            // Taobao theme pages draw from a broad shared audience.
            spec.user_frac = 0.45;
            spec.item_frac = 0.35;
            spec
        })
        .collect();
    cfg.generate()
}

/// A long-tailed many-domain dataset standing in for Taobao-online
/// (69k domains, Zipf-distributed sizes). `n_domains` defaults to 64 in the
/// benches; sizes decay as `1/rank^0.9` from `head_samples`.
pub fn industry(n_domains: usize, head_samples: usize, seed: u64) -> MdrDataset {
    assert!(n_domains >= 2, "need at least two domains");
    let mut cfg = GeneratorConfig::base("taobao-online-sim", 8_000, 3_000, seed);
    // Calibrated down from 0.6: at 0.6 no shared model beats per-domain
    // training on this preset, which contradicts the paper's deployment
    // experience (RAW > RAW+Separate).
    cfg.conflict = 0.4;
    cfg.dense_dim = 8;
    cfg.n_user_groups = 16;
    cfg.n_item_cats = 32;
    cfg.domains = (0..n_domains)
        .map(|i| {
            let n = ((head_samples as f64) / ((i + 1) as f64).powf(0.9)).round() as usize;
            // CTR ratios cycle through the paper's observed range [0.2, 0.5).
            let ctr = 0.2 + 0.3 * ((i * 7 % 10) as f32 / 10.0);
            let mut spec = DomainSpec::new(format!("online-D{}", i + 1), n.max(30), ctr);
            // Tail domains see fewer users/items, like niche theme pages.
            spec.user_frac = (0.5 / ((i + 1) as f64).powf(0.3)).max(0.02);
            spec.item_frac = (0.4 / ((i + 1) as f64).powf(0.3)).max(0.02);
            spec
        })
        .collect();
    cfg.generate()
}

/// The sharding stress preset: thousands of Zipf-sized domains, most of
/// them a handful of samples, standing in for the paper's production
/// deployment (69k domains served by a sharded PS across 440 machines).
/// Unlike [`industry`] — which models the *learning* dynamics of a long
/// tail — this preset maximizes *key-space* pressure: every domain adds a
/// bias row and its own slice of users/items, so a `longtail(2048, ..)`
/// run touches tens of thousands of parameter rows and gives a sharded
/// server fleet real routing work. Sizes decay as `1/rank^1.05` from
/// `head_samples` with a floor of 4 (one train/val/test sample each).
pub fn longtail(n_domains: usize, head_samples: usize, seed: u64) -> MdrDataset {
    assert!(n_domains >= 2_000, "longtail is the many-domain preset: need >= 2000 domains");
    let mut cfg = GeneratorConfig::base("longtail-sim", 20_000, 8_000, seed);
    cfg.conflict = 0.4;
    cfg.dense_dim = 8;
    cfg.n_user_groups = 16;
    cfg.n_item_cats = 32;
    cfg.domains = (0..n_domains)
        .map(|i| {
            let n = ((head_samples as f64) / ((i + 1) as f64).powf(1.05)).round() as usize;
            let ctr = 0.2 + 0.3 * ((i * 7 % 10) as f32 / 10.0);
            let mut spec = DomainSpec::new(format!("tail-D{}", i + 1), n.max(4), ctr);
            // Deep-tail domains are tiny niches: a few users, a few items.
            spec.user_frac = (0.5 / ((i + 1) as f64).powf(0.3)).max(0.001);
            spec.item_frac = (0.4 / ((i + 1) as f64).powf(0.3)).max(0.001);
            spec
        })
        .collect();
    cfg.generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Split;

    #[test]
    fn amazon6_structure() {
        let ds = amazon6(1, 0.05);
        assert_eq!(ds.n_domains(), 6);
        assert_eq!(ds.name, "amazon-6");
        assert_eq!(ds.dense_dim(), 0);
        assert!(ds.split_len(Split::Train) > 0);
        // Toys and Games is the largest domain, as in Table II.
        let sizes: Vec<usize> = ds.domains.iter().map(|d| d.len()).collect();
        let max_idx = sizes.iter().enumerate().max_by_key(|(_, &s)| s).unwrap().0;
        assert_eq!(ds.domains[max_idx].name, "Toys and Games");
    }

    #[test]
    fn amazon13_has_sparse_domains() {
        let ds = amazon13(1, 0.05);
        assert_eq!(ds.n_domains(), 13);
        let gift = ds.domains.iter().find(|d| d.name == "Gift Cards").unwrap();
        let toys = ds.domains.iter().find(|d| d.name == "Toys and Games").unwrap();
        assert!(
            gift.len() * 10 < toys.len(),
            "Gift Cards ({}) should be far sparser than Toys ({})",
            gift.len(),
            toys.len()
        );
    }

    #[test]
    fn taobao_variants() {
        for n in [10, 20, 30] {
            let ds = taobao(n, 2, 0.05);
            assert_eq!(ds.n_domains(), n);
            assert_eq!(ds.dense_dim(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "Taobao-10/20/30")]
    fn taobao_rejects_other_sizes() {
        taobao(15, 1, 1.0);
    }

    #[test]
    fn industry_is_long_tailed() {
        let ds = industry(16, 1_000, 3);
        assert_eq!(ds.n_domains(), 16);
        let first = ds.domains[0].len();
        let last = ds.domains[15].len();
        assert!(first > 4 * last, "head {} should dwarf tail {}", first, last);
    }

    #[test]
    fn longtail_is_zipf_with_a_deep_tail() {
        let ds = longtail(2_000, 400, 5);
        assert_eq!(ds.n_domains(), 2_000);
        assert_eq!(ds.name, "longtail-sim");
        // Zipf head dwarfs the tail, and the deep tail sits at the floor
        // (4 samples: one val and one test each, the rest train).
        assert_eq!(ds.domains[0].len(), 400);
        assert!(ds.domains.iter().rev().take(100).all(|d| d.len() == 4));
        for d in &ds.domains {
            assert!(!d.split(Split::Test).is_empty(), "{} has no test split", d.name);
        }
        // Same seed, same bytes.
        let again = longtail(2_000, 400, 5);
        assert_eq!(ds.domains[1999].train, again.domains[1999].train);
    }

    #[test]
    #[should_panic(expected = "many-domain preset")]
    fn longtail_rejects_small_domain_counts() {
        longtail(64, 400, 1);
    }

    #[test]
    fn presets_are_deterministic() {
        let a = taobao(10, 7, 0.05);
        let b = taobao(10, 7, 0.05);
        assert_eq!(a.domains[3].train, b.domains[3].train);
    }
}
