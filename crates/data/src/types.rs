//! Core data types: interactions, domains, datasets and batches.

use mamdr_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One user–item interaction with a click label (paper Def. III.1:
/// `(u, v, y) ∈ Tⁱ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interaction {
    /// Global user id.
    pub user: u32,
    /// Global item id.
    pub item: u32,
    /// Click label in {0.0, 1.0}.
    pub label: f32,
}

/// Which split of a domain's interactions to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training interactions.
    Train,
    /// Validation interactions.
    Val,
    /// Held-out test interactions.
    Test,
}

/// All interactions belonging to one domain, already split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainData {
    /// Domain name, e.g. `"Prime Pantry"` or `"D17"`.
    pub name: String,
    /// Training interactions.
    pub train: Vec<Interaction>,
    /// Validation interactions.
    pub val: Vec<Interaction>,
    /// Test interactions.
    pub test: Vec<Interaction>,
    /// Positive/negative ratio this domain was generated with (Eq. 23).
    pub ctr_ratio: f32,
}

impl DomainData {
    /// Interactions of the requested split.
    pub fn split(&self, split: Split) -> &[Interaction] {
        match split {
            Split::Train => &self.train,
            Split::Val => &self.val,
            Split::Test => &self.test,
        }
    }

    /// Total interactions across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when the domain holds no interactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of positive labels in the training split.
    pub fn train_positive_rate(&self) -> f32 {
        if self.train.is_empty() {
            return 0.0;
        }
        self.train.iter().map(|i| i.label).sum::<f32>() / self.train.len() as f32
    }
}

/// A complete multi-domain dataset: the global feature storage
/// (paper Fig. 2) plus per-domain interaction sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdrDataset {
    /// Dataset name, e.g. `"amazon-6"`.
    pub name: String,
    /// Number of distinct users across all domains.
    pub n_users: usize,
    /// Number of distinct items across all domains.
    pub n_items: usize,
    /// Number of user-group categorical values (side feature).
    pub n_user_groups: usize,
    /// Number of item-category values (side feature).
    pub n_item_cats: usize,
    /// Group id per user (`[n_users]`).
    pub user_group: Vec<u32>,
    /// Category id per item (`[n_items]`).
    pub item_cat: Vec<u32>,
    /// Frozen dense user features `[n_users, dense_dim]` (the stand-in for
    /// the paper's GraphSage features); `None` for Amazon-style presets.
    pub dense_user: Option<Tensor>,
    /// Frozen dense item features `[n_items, dense_dim]`.
    pub dense_item: Option<Tensor>,
    /// The domains.
    pub domains: Vec<DomainData>,
}

impl MdrDataset {
    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// Width of the dense side features (0 when absent).
    pub fn dense_dim(&self) -> usize {
        self.dense_user.as_ref().map_or(0, |t| t.shape()[1])
    }

    /// Total interactions in a split across domains.
    pub fn split_len(&self, split: Split) -> usize {
        self.domains.iter().map(|d| d.split(split).len()).sum()
    }

    /// Basic integrity checks: ids in range, labels binary, side features
    /// sized to the id spaces. Panics with a diagnostic on violation.
    pub fn validate(&self) {
        assert_eq!(self.user_group.len(), self.n_users, "user_group length");
        assert_eq!(self.item_cat.len(), self.n_items, "item_cat length");
        assert!(self.user_group.iter().all(|&g| (g as usize) < self.n_user_groups));
        assert!(self.item_cat.iter().all(|&c| (c as usize) < self.n_item_cats));
        if let Some(du) = &self.dense_user {
            assert_eq!(du.shape()[0], self.n_users, "dense_user rows");
        }
        if let Some(di) = &self.dense_item {
            assert_eq!(di.shape()[0], self.n_items, "dense_item rows");
        }
        for d in &self.domains {
            for split in [Split::Train, Split::Val, Split::Test] {
                for it in d.split(split) {
                    assert!((it.user as usize) < self.n_users, "user id out of range");
                    assert!((it.item as usize) < self.n_items, "item id out of range");
                    assert!(it.label == 0.0 || it.label == 1.0, "label not binary");
                }
            }
        }
    }
}

/// A materialized minibatch from one domain, ready for a model forward pass.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Index of the domain the interactions come from.
    pub domain: usize,
    /// User ids `[b]`.
    pub users: Vec<u32>,
    /// Item ids `[b]`.
    pub items: Vec<u32>,
    /// User group ids `[b]`.
    pub user_groups: Vec<u32>,
    /// Item category ids `[b]`.
    pub item_cats: Vec<u32>,
    /// Labels `[b]`.
    pub labels: Vec<f32>,
    /// Gathered dense user features `[b, dense_dim]`, if the dataset has any.
    pub dense_user: Option<Tensor>,
    /// Gathered dense item features `[b, dense_dim]`.
    pub dense_item: Option<Tensor>,
}

impl Batch {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Labels as a `[b]` tensor.
    pub fn labels_tensor(&self) -> Tensor {
        Tensor::from_vec([self.labels.len()], self.labels.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_domain() -> DomainData {
        DomainData {
            name: "d".into(),
            train: vec![
                Interaction { user: 0, item: 0, label: 1.0 },
                Interaction { user: 1, item: 1, label: 0.0 },
            ],
            val: vec![Interaction { user: 0, item: 1, label: 0.0 }],
            test: vec![],
            ctr_ratio: 0.3,
        }
    }

    #[test]
    fn split_access_and_lengths() {
        let d = tiny_domain();
        assert_eq!(d.split(Split::Train).len(), 2);
        assert_eq!(d.split(Split::Val).len(), 1);
        assert_eq!(d.split(Split::Test).len(), 0);
        assert_eq!(d.len(), 3);
        assert!((d.train_positive_rate() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn dataset_validate_accepts_consistent() {
        let ds = MdrDataset {
            name: "t".into(),
            n_users: 2,
            n_items: 2,
            n_user_groups: 1,
            n_item_cats: 1,
            user_group: vec![0, 0],
            item_cat: vec![0, 0],
            dense_user: None,
            dense_item: None,
            domains: vec![tiny_domain()],
        };
        ds.validate();
        assert_eq!(ds.n_domains(), 1);
        assert_eq!(ds.dense_dim(), 0);
        assert_eq!(ds.split_len(Split::Train), 2);
    }

    #[test]
    #[should_panic(expected = "user id out of range")]
    fn dataset_validate_rejects_bad_ids() {
        let mut d = tiny_domain();
        d.train.push(Interaction { user: 7, item: 0, label: 1.0 });
        let ds = MdrDataset {
            name: "t".into(),
            n_users: 2,
            n_items: 2,
            n_user_groups: 1,
            n_item_cats: 1,
            user_group: vec![0, 0],
            item_cat: vec![0, 0],
            dense_user: None,
            dense_item: None,
            domains: vec![d],
        };
        ds.validate();
    }
}
