//! # mamdr-data
//!
//! Multi-domain recommendation (MDR) benchmark datasets.
//!
//! The paper evaluates on Amazon product-review and Taobao cloud-theme click
//! logs plus a private industry dataset — none of which can ship with this
//! repository. Following the substitution rule in `DESIGN.md`, this crate
//! generates *synthetic* datasets from a ground-truth multi-domain click
//! model that preserves the phenomena the paper's experiments probe:
//!
//! * **Partially overlapping users/items** across domains (shared latent
//!   factors, per-domain sub-populations).
//! * **Domain conflict**: each domain scores a user–item pair through its own
//!   mixing matrix `A_d`; a conflict knob interpolates between identical
//!   (`A_d = A`) and fully independent transforms, which directly controls
//!   how far apart per-domain gradients point.
//! * **Data sparsity**: per-domain sample counts are taken from the paper's
//!   Tables II–IV (scaled), including the seven sparse Amazon-13 domains.
//! * **CTR skew**: per-domain positive/negative ratios replicate the paper's
//!   `CTR Ratio` rows (Eq. 23).
//!
//! Presets mirror the paper's benchmarks: [`presets::amazon6`],
//! [`presets::amazon13`], [`presets::taobao`] (10/20/30) and
//! [`presets::industry`] (long-tailed many-domain set standing in for
//! Taobao-online).

pub mod batch;
pub mod generator;
pub mod io;
pub mod presets;
pub mod stats;
pub mod types;

pub use batch::{batches_for_domain, make_batch, BatchPlan};
pub use generator::{DomainSpec, GeneratorConfig, GroundTruth};
pub use types::{Batch, DomainData, Interaction, MdrDataset, Split};
