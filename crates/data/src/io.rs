//! Loading real interaction logs.
//!
//! The synthetic generator stands in for the paper's gated datasets, but a
//! downstream user with access to the real Amazon reviews or the Taobao
//! cloud-theme log (or any other multi-domain click log) can load it here
//! and run every experiment in this workspace unchanged.
//!
//! ## Format
//!
//! One CSV-like line per interaction:
//!
//! ```text
//! domain,user,item,label[,split]
//! ```
//!
//! * `domain` — domain name (string; row order defines domain indexing).
//! * `user`, `item` — non-negative integer ids (may be sparse; they are
//!   re-mapped to a dense global id space).
//! * `label` — `0` or `1`.
//! * `split` — optional `train` / `val` / `test`; rows without it are
//!   split 60/20/20 per domain, deterministically in the load seed.
//!
//! Lines starting with `#` and blank lines are ignored.

use crate::types::{DomainData, Interaction, MdrDataset, Split};
use mamdr_tensor::rng::{seeded, shuffle};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct LoadError {
    /// Line where the problem was found (0 for I/O errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LoadError {}

fn err(line: usize, message: impl Into<String>) -> LoadError {
    LoadError { line, message: message.into() }
}

/// Loads a dataset from interaction-log text (see module docs for the
/// format). `seed` drives the split of rows that carry no explicit split
/// tag. Side features default to a single user group / item category;
/// real deployments attach their own feature storage afterwards.
pub fn load_interactions(
    reader: impl BufRead,
    name: &str,
    seed: u64,
) -> Result<MdrDataset, LoadError> {
    struct Row {
        domain: usize,
        user: u32,
        item: u32,
        label: f32,
        split: Option<Split>,
    }

    let mut domains: Vec<String> = Vec::new();
    let mut domain_index: HashMap<String, usize> = HashMap::new();
    let mut user_ids: HashMap<u64, u32> = HashMap::new();
    let mut item_ids: HashMap<u64, u32> = HashMap::new();
    let mut rows: Vec<Row> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(|e| err(lineno, format!("I/O error: {e}")))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 4 && fields.len() != 5 {
            return Err(err(lineno, format!("expected 4 or 5 fields, got {}", fields.len())));
        }
        let domain = *domain_index.entry(fields[0].to_string()).or_insert_with(|| {
            domains.push(fields[0].to_string());
            domains.len() - 1
        });
        let raw_user: u64 = fields[1]
            .parse()
            .map_err(|e| err(lineno, format!("bad user id {:?}: {e}", fields[1])))?;
        let raw_item: u64 = fields[2]
            .parse()
            .map_err(|e| err(lineno, format!("bad item id {:?}: {e}", fields[2])))?;
        let label: f32 = match fields[3] {
            "0" => 0.0,
            "1" => 1.0,
            other => return Err(err(lineno, format!("label must be 0 or 1, got {other:?}"))),
        };
        let split = match fields.get(4) {
            None => None,
            Some(&"train") => Some(Split::Train),
            Some(&"val") => Some(Split::Val),
            Some(&"test") => Some(Split::Test),
            Some(other) => {
                return Err(err(lineno, format!("split must be train/val/test, got {other:?}")))
            }
        };
        let next_user = user_ids.len() as u32;
        let user = *user_ids.entry(raw_user).or_insert(next_user);
        let next_item = item_ids.len() as u32;
        let item = *item_ids.entry(raw_item).or_insert(next_item);
        rows.push(Row { domain, user, item, label, split });
    }
    if rows.is_empty() {
        return Err(err(0, "no interactions found"));
    }

    let mut rng = seeded(seed);
    let mut domain_data: Vec<DomainData> = domains
        .iter()
        .map(|name| DomainData {
            name: name.clone(),
            train: Vec::new(),
            val: Vec::new(),
            test: Vec::new(),
            ctr_ratio: 0.0,
        })
        .collect();

    // Tagged rows route directly; untagged rows are pooled per domain and
    // split 60/20/20 after a deterministic shuffle.
    let mut untagged: Vec<Vec<Interaction>> = vec![Vec::new(); domains.len()];
    for row in rows {
        let it = Interaction { user: row.user, item: row.item, label: row.label };
        match row.split {
            Some(Split::Train) => domain_data[row.domain].train.push(it),
            Some(Split::Val) => domain_data[row.domain].val.push(it),
            Some(Split::Test) => domain_data[row.domain].test.push(it),
            None => untagged[row.domain].push(it),
        }
    }
    for (d, mut pool) in untagged.into_iter().enumerate() {
        if pool.is_empty() {
            continue;
        }
        shuffle(&mut rng, &mut pool);
        let n = pool.len();
        let n_train = (0.6 * n as f64).round() as usize;
        let n_val = (0.2 * n as f64).round() as usize;
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        let test = pool.split_off(n_train + n_val);
        let val = pool.split_off(n_train);
        domain_data[d].train.extend(pool);
        domain_data[d].val.extend(val);
        domain_data[d].test.extend(test);
    }

    // Observed positive/negative ratio per domain.
    for dom in &mut domain_data {
        let (mut pos, mut neg) = (0usize, 0usize);
        for it in dom.train.iter().chain(&dom.val).chain(&dom.test) {
            if it.label > 0.5 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        dom.ctr_ratio = if neg == 0 { f32::INFINITY } else { pos as f32 / neg as f32 };
    }

    let ds = MdrDataset {
        name: name.to_string(),
        n_users: user_ids.len(),
        n_items: item_ids.len(),
        n_user_groups: 1,
        n_item_cats: 1,
        user_group: vec![0; user_ids.len()],
        item_cat: vec![0; item_ids.len()],
        dense_user: None,
        dense_item: None,
        domains: domain_data,
    };
    ds.validate();
    Ok(ds)
}

/// Loads a dataset from a file path (see [`load_interactions`]).
pub fn load_interactions_file(path: impl AsRef<Path>, seed: u64) -> Result<MdrDataset, LoadError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| err(0, format!("open {path:?}: {e}")))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "loaded".to_string());
    load_interactions(std::io::BufReader::new(file), &name, seed)
}

/// Writes a dataset back out in the loadable format (round-trip support,
/// and a way to export synthetic benchmarks for other tooling).
pub fn write_interactions(ds: &MdrDataset, mut w: impl std::io::Write) -> std::io::Result<()> {
    writeln!(w, "# domain,user,item,label,split")?;
    for dom in &ds.domains {
        for (split, tag) in [(Split::Train, "train"), (Split::Val, "val"), (Split::Test, "test")] {
            for it in dom.split(split) {
                writeln!(w, "{},{},{},{},{}", dom.name, it.user, it.item, it.label as u8, tag)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment line
travel,10,100,1,train
travel,11,100,0,train
travel,10,101,1,val
travel,12,102,0,test
party,10,200,1
party,13,201,0
party,14,202,1
party,15,203,0
party,13,204,1
";

    #[test]
    fn loads_tagged_and_untagged_rows() {
        let ds = load_interactions(SAMPLE.as_bytes(), "demo", 7).unwrap();
        assert_eq!(ds.n_domains(), 2);
        assert_eq!(ds.domains[0].name, "travel");
        assert_eq!(ds.domains[0].train.len(), 2);
        assert_eq!(ds.domains[0].val.len(), 1);
        assert_eq!(ds.domains[0].test.len(), 1);
        // untagged party rows were split 60/20/20 over 5 rows = 3/1/1
        assert_eq!(ds.domains[1].len(), 5);
        assert_eq!(ds.domains[1].train.len(), 3);
        // ids were densified: 6 distinct users, 8 distinct items
        assert_eq!(ds.n_users, 6);
        assert_eq!(ds.n_items, 8);
    }

    #[test]
    fn id_mapping_is_consistent() {
        let ds = load_interactions(SAMPLE.as_bytes(), "demo", 7).unwrap();
        // raw user 10 appears in travel (train+val) and party; every row must
        // share one dense id.
        let mut ids = std::collections::HashSet::new();
        for dom in &ds.domains {
            for it in dom.train.iter().chain(&dom.val).chain(&dom.test) {
                ids.insert(it.user);
            }
        }
        assert_eq!(ids.len(), ds.n_users);
    }

    #[test]
    fn untagged_split_is_deterministic() {
        let a = load_interactions(SAMPLE.as_bytes(), "demo", 7).unwrap();
        let b = load_interactions(SAMPLE.as_bytes(), "demo", 7).unwrap();
        assert_eq!(a.domains[1].train, b.domains[1].train);
        let c = load_interactions(SAMPLE.as_bytes(), "demo", 8).unwrap();
        assert_ne!(a.domains[1].train, c.domains[1].train);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(load_interactions("a,b".as_bytes(), "x", 1).is_err());
        assert!(load_interactions("d,1,2,7".as_bytes(), "x", 1).is_err());
        assert!(load_interactions("d,1,2,1,maybe".as_bytes(), "x", 1).is_err());
        assert!(load_interactions("d,x,2,1".as_bytes(), "x", 1).is_err());
        let e = load_interactions("".as_bytes(), "x", 1).unwrap_err();
        assert!(e.message.contains("no interactions"));
    }

    #[test]
    fn roundtrip_through_writer() {
        let ds = load_interactions(SAMPLE.as_bytes(), "demo", 7).unwrap();
        let mut buf = Vec::new();
        write_interactions(&ds, &mut buf).unwrap();
        let ds2 = load_interactions(buf.as_slice(), "demo", 7).unwrap();
        assert_eq!(ds.n_users, ds2.n_users);
        assert_eq!(ds.n_items, ds2.n_items);
        for (a, b) in ds.domains.iter().zip(&ds2.domains) {
            assert_eq!(a.train.len(), b.train.len());
            assert_eq!(a.val.len(), b.val.len());
            assert_eq!(a.test.len(), b.test.len());
        }
    }
}
