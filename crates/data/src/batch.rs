//! Minibatch assembly.

use crate::types::{Batch, Interaction, MdrDataset, Split};
use mamdr_tensor::rng::shuffle;
use rand::Rng;

/// Materializes a [`Batch`] from a slice of interactions, gathering the side
/// features from the dataset's global feature storage.
pub fn make_batch(ds: &MdrDataset, domain: usize, interactions: &[Interaction]) -> Batch {
    let users: Vec<u32> = interactions.iter().map(|i| i.user).collect();
    let items: Vec<u32> = interactions.iter().map(|i| i.item).collect();
    let user_groups = users.iter().map(|&u| ds.user_group[u as usize]).collect();
    let item_cats = items.iter().map(|&v| ds.item_cat[v as usize]).collect();
    let labels = interactions.iter().map(|i| i.label).collect();
    let dense_user = ds.dense_user.as_ref().map(|t| t.gather_rows(&users));
    let dense_item = ds.dense_item.as_ref().map(|t| t.gather_rows(&items));
    Batch { domain, users, items, user_groups, item_cats, labels, dense_user, dense_item }
}

/// How to iterate a domain's split.
#[derive(Debug, Clone, Copy)]
pub struct BatchPlan {
    /// Examples per batch.
    pub batch_size: usize,
    /// Shuffle example order before batching (training only).
    pub shuffled: bool,
}

impl BatchPlan {
    /// A shuffled training plan.
    pub fn train(batch_size: usize) -> Self {
        BatchPlan { batch_size, shuffled: true }
    }

    /// A sequential evaluation plan.
    pub fn eval(batch_size: usize) -> Self {
        BatchPlan { batch_size, shuffled: false }
    }
}

/// Builds all batches of `split` for `domain`, according to `plan`.
///
/// The trailing partial batch is kept (never dropped) so evaluation sees
/// every example.
pub fn batches_for_domain(
    ds: &MdrDataset,
    domain: usize,
    split: Split,
    plan: BatchPlan,
    rng: &mut impl Rng,
) -> Vec<Batch> {
    assert!(plan.batch_size > 0, "batch_size must be positive");
    let mut interactions: Vec<Interaction> = ds.domains[domain].split(split).to_vec();
    if plan.shuffled {
        shuffle(rng, &mut interactions);
    }
    interactions.chunks(plan.batch_size).map(|chunk| make_batch(ds, domain, chunk)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DomainSpec, GeneratorConfig};
    use mamdr_tensor::rng::seeded;

    fn dataset() -> MdrDataset {
        let mut cfg = GeneratorConfig::base("t", 50, 30, 5);
        cfg.dense_dim = 4;
        cfg.domains = vec![DomainSpec::new("a", 300, 0.3)];
        cfg.generate()
    }

    #[test]
    fn batches_cover_every_example() {
        let ds = dataset();
        let mut rng = seeded(1);
        let bs = batches_for_domain(&ds, 0, Split::Train, BatchPlan::train(32), &mut rng);
        let total: usize = bs.iter().map(|b| b.len()).sum();
        assert_eq!(total, ds.domains[0].train.len());
        // all but the last batch are full
        for b in &bs[..bs.len() - 1] {
            assert_eq!(b.len(), 32);
        }
    }

    #[test]
    fn batch_gathers_side_features() {
        let ds = dataset();
        let inter = &ds.domains[0].train[..8];
        let b = make_batch(&ds, 0, inter);
        assert_eq!(b.len(), 8);
        assert_eq!(b.dense_user.as_ref().unwrap().shape(), &[8, 4]);
        assert_eq!(b.dense_item.as_ref().unwrap().shape(), &[8, 4]);
        for (k, it) in inter.iter().enumerate() {
            assert_eq!(b.users[k], it.user);
            assert_eq!(b.user_groups[k], ds.user_group[it.user as usize]);
            assert_eq!(b.item_cats[k], ds.item_cat[it.item as usize]);
            assert_eq!(
                b.dense_user.as_ref().unwrap().row(k),
                ds.dense_user.as_ref().unwrap().row(it.user as usize)
            );
        }
    }

    #[test]
    fn eval_plan_is_stable_train_plan_shuffles() {
        let ds = dataset();
        let e1 = batches_for_domain(&ds, 0, Split::Val, BatchPlan::eval(16), &mut seeded(1));
        let e2 = batches_for_domain(&ds, 0, Split::Val, BatchPlan::eval(16), &mut seeded(2));
        assert_eq!(e1[0].users, e2[0].users, "eval order must not depend on rng");
        let t1 = batches_for_domain(&ds, 0, Split::Train, BatchPlan::train(16), &mut seeded(1));
        let t2 = batches_for_domain(&ds, 0, Split::Train, BatchPlan::train(16), &mut seeded(2));
        assert_ne!(t1[0].users, t2[0].users, "train order should be shuffled");
    }

    #[test]
    fn labels_tensor_matches() {
        let ds = dataset();
        let b = make_batch(&ds, 0, &ds.domains[0].train[..5]);
        let t = b.labels_tensor();
        assert_eq!(t.shape(), &[5]);
        assert_eq!(t.data(), &b.labels[..]);
    }
}
