//! Dataset statistics reporting (reproduces the layout of paper Tables I–IV).

use crate::types::{MdrDataset, Split};
use std::fmt::Write as _;

/// One row of the overall-statistics table (paper Table I).
#[derive(Debug, Clone)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Domain count.
    pub n_domains: usize,
    /// User count.
    pub n_users: usize,
    /// Item count.
    pub n_items: usize,
    /// Training interactions.
    pub n_train: usize,
    /// Validation interactions.
    pub n_val: usize,
    /// Test interactions.
    pub n_test: usize,
    /// Mean interactions per domain.
    pub samples_per_domain: usize,
}

/// Computes the Table-I style summary for a dataset.
pub fn summarize(ds: &MdrDataset) -> DatasetSummary {
    let n_train = ds.split_len(Split::Train);
    let n_val = ds.split_len(Split::Val);
    let n_test = ds.split_len(Split::Test);
    DatasetSummary {
        name: ds.name.clone(),
        n_domains: ds.n_domains(),
        n_users: ds.n_users,
        n_items: ds.n_items,
        n_train,
        n_val,
        n_test,
        samples_per_domain: (n_train + n_val + n_test) / ds.n_domains().max(1),
    }
}

/// Renders per-domain statistics in the layout of paper Tables II–IV:
/// sample count, percentage of the dataset, and CTR ratio per domain.
pub fn per_domain_table(ds: &MdrDataset) -> String {
    let total: usize = ds.domains.iter().map(|d| d.len()).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{:<28} {:>10} {:>9} {:>10}", "Domain", "#Samples", "Pct", "CTR Ratio");
    for d in &ds.domains {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>8.2}% {:>10.2}",
            d.name,
            d.len(),
            100.0 * d.len() as f64 / total.max(1) as f64,
            d.ctr_ratio
        );
    }
    out
}

/// Renders the Table-I style header row for a set of datasets.
pub fn overall_table(summaries: &[DatasetSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>14}",
        "Dataset", "#Domain", "#User", "#Item", "#Train", "#Val", "#Test", "Sample/Domain"
    );
    for s in summaries {
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>14}",
            s.name,
            s.n_domains,
            s.n_users,
            s.n_items,
            s.n_train,
            s.n_val,
            s.n_test,
            s.samples_per_domain
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::amazon6;

    #[test]
    fn summary_counts_are_consistent() {
        let ds = amazon6(1, 0.05);
        let s = summarize(&ds);
        assert_eq!(s.n_domains, 6);
        let total: usize = ds.domains.iter().map(|d| d.len()).sum();
        assert_eq!(s.n_train + s.n_val + s.n_test, total);
        assert!(s.samples_per_domain > 0);
    }

    #[test]
    fn tables_render() {
        let ds = amazon6(1, 0.05);
        let t = per_domain_table(&ds);
        assert!(t.contains("Prime Pantry"));
        assert!(t.contains("CTR Ratio"));
        let o = overall_table(&[summarize(&ds)]);
        assert!(o.contains("amazon-6"));
        // percentages should sum to ~100
        let pct_sum: f64 = ds
            .domains
            .iter()
            .map(|d| {
                100.0 * d.len() as f64 / ds.domains.iter().map(|x| x.len()).sum::<usize>() as f64
            })
            .sum();
        assert!((pct_sum - 100.0).abs() < 1e-6);
    }
}
