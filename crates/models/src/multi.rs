//! Multi-task / multi-domain CTR architectures (paper Table V, lower block).
//!
//! These models carry explicit per-domain structure (towers, gates or
//! element-wise weight masks) and read `batch.domain` to route examples.

use crate::config::{FeatureConfig, ModelConfig};
use crate::features::FieldEmbeddings;
use crate::model::CtrModel;
use mamdr_autodiff::{Tape, Var};
use mamdr_data::Batch;
use mamdr_nn::{Activation, Dense, Embedding, ForwardCtx, Mlp, ParamStore, ParamStoreBuilder};
use mamdr_tensor::init::Init;

/// Width of the per-domain tower hidden layer (paper: `[64]`, scaled).
const TOWER_HIDDEN: usize = 16;

/// Shared-Bottom: one shared trunk MLP, one small tower per domain.
pub struct SharedBottom {
    fields: FieldEmbeddings,
    bottom: Mlp,
    towers: Vec<Mlp>,
}

impl SharedBottom {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
        n_domains: usize,
    ) -> Self {
        assert!(n_domains >= 1, "need at least one domain");
        let fields = FieldEmbeddings::new(builder, "sb", features, config);
        let mut dims = vec![fields.concat_dim()];
        dims.extend_from_slice(&config.hidden);
        let bottom = Mlp::new(builder, "sb/bottom", &dims, Activation::Relu, config.dropout);
        let trunk_out = *dims.last().unwrap();
        let towers = (0..n_domains)
            .map(|d| {
                Mlp::new(
                    builder,
                    &format!("sb/tower{d}"),
                    &[trunk_out, TOWER_HIDDEN, 1],
                    Activation::Linear,
                    0.0,
                )
            })
            .collect();
        SharedBottom { fields, bottom, towers }
    }
}

impl CtrModel for SharedBottom {
    fn name(&self) -> &str {
        "Shared-Bottom"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let x = self.fields.concat(ps, tape, batch);
        let h = self.bottom.forward(ps, tape, ctx, x);
        self.towers[batch.domain].forward(ps, tape, ctx, h)
    }
}

/// Multi-gate Mixture-of-Experts: shared experts, one softmax gate and one
/// tower per domain.
pub struct Mmoe {
    fields: FieldEmbeddings,
    experts: Vec<Mlp>,
    gates: Vec<Dense>,
    towers: Vec<Mlp>,
}

impl Mmoe {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
        n_domains: usize,
    ) -> Self {
        assert!(n_domains >= 1);
        let fields = FieldEmbeddings::new(builder, "mmoe", features, config);
        let in_dim = fields.concat_dim();
        let mut expert_dims = vec![in_dim];
        expert_dims.extend_from_slice(&config.hidden);
        let expert_out = *expert_dims.last().unwrap();
        let experts = (0..config.n_experts)
            .map(|e| {
                Mlp::new(
                    builder,
                    &format!("mmoe/expert{e}"),
                    &expert_dims,
                    Activation::Relu,
                    config.dropout,
                )
            })
            .collect();
        let gates = (0..n_domains)
            .map(|d| {
                Dense::new(
                    builder,
                    &format!("mmoe/gate{d}"),
                    in_dim,
                    config.n_experts,
                    Activation::Linear,
                )
            })
            .collect();
        let towers = (0..n_domains)
            .map(|d| {
                Mlp::new(
                    builder,
                    &format!("mmoe/tower{d}"),
                    &[expert_out, TOWER_HIDDEN, 1],
                    Activation::Linear,
                    0.0,
                )
            })
            .collect();
        Mmoe { fields, experts, gates, towers }
    }
}

/// Softmax-gated mixture of expert outputs:
/// `Σ_e gate[:, e] ⊙ expert_e`, all `[b, h]`.
fn gated_mixture(tape: &mut Tape, gate_logits: Var, expert_outs: &[Var], batch_len: usize) -> Var {
    let gate = tape.softmax_rows(gate_logits);
    let mut acc: Option<Var> = None;
    for (e, &out) in expert_outs.iter().enumerate() {
        let ge = tape.slice_cols(gate, e, 1);
        let ge = tape.reshape(ge, &[batch_len]);
        let w = tape.mul_col(out, ge);
        acc = Some(match acc {
            Some(prev) => tape.add(prev, w),
            None => w,
        });
    }
    acc.expect("at least one expert")
}

impl CtrModel for Mmoe {
    fn name(&self) -> &str {
        "MMOE"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let x = self.fields.concat(ps, tape, batch);
        let expert_outs: Vec<Var> =
            self.experts.iter().map(|e| e.forward(ps, tape, ctx, x)).collect();
        let gate_logits = self.gates[batch.domain].forward(ps, tape, x);
        let mixed = gated_mixture(tape, gate_logits, &expert_outs, batch.len());
        self.towers[batch.domain].forward(ps, tape, ctx, mixed)
    }
}

/// One CGC extraction block: shared experts + per-domain experts, with a
/// per-domain gate over (shared ∪ own) experts.
struct CgcBlock {
    shared_experts: Vec<Mlp>,
    domain_experts: Vec<Vec<Mlp>>,
    gates: Vec<Dense>,
}

impl CgcBlock {
    fn new(
        builder: &mut ParamStoreBuilder,
        name: &str,
        in_dim: usize,
        hidden: &[usize],
        n_experts: usize,
        n_domains: usize,
        dropout: f32,
    ) -> Self {
        let mut dims = vec![in_dim];
        dims.extend_from_slice(hidden);
        let shared_experts = (0..n_experts)
            .map(|e| Mlp::new(builder, &format!("{name}/se{e}"), &dims, Activation::Relu, dropout))
            .collect();
        let domain_experts = (0..n_domains)
            .map(|d| {
                (0..n_experts)
                    .map(|e| {
                        Mlp::new(
                            builder,
                            &format!("{name}/d{d}e{e}"),
                            &dims,
                            Activation::Relu,
                            dropout,
                        )
                    })
                    .collect()
            })
            .collect();
        let gates = (0..n_domains)
            .map(|d| {
                Dense::new(
                    builder,
                    &format!("{name}/gate{d}"),
                    in_dim,
                    2 * n_experts,
                    Activation::Linear,
                )
            })
            .collect();
        CgcBlock { shared_experts, domain_experts, gates }
    }

    /// Fused representation for `domain` from input `x`.
    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        x: Var,
        domain: usize,
        batch_len: usize,
    ) -> Var {
        let mut outs: Vec<Var> =
            self.shared_experts.iter().map(|e| e.forward(ps, tape, ctx, x)).collect();
        outs.extend(self.domain_experts[domain].iter().map(|e| e.forward(ps, tape, ctx, x)));
        let gate_logits = self.gates[domain].forward(ps, tape, x);
        gated_mixture(tape, gate_logits, &outs, batch_len)
    }
}

/// Customized Gate Control: a single CGC extraction block plus per-domain
/// towers (the one-layer special case of PLE).
pub struct Cgc {
    fields: FieldEmbeddings,
    block: CgcBlock,
    towers: Vec<Mlp>,
}

impl Cgc {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
        n_domains: usize,
    ) -> Self {
        assert!(n_domains >= 1);
        let fields = FieldEmbeddings::new(builder, "cgc", features, config);
        let block = CgcBlock::new(
            builder,
            "cgc/l0",
            fields.concat_dim(),
            &config.hidden,
            config.n_experts,
            n_domains,
            config.dropout,
        );
        let out = *config.hidden.last().unwrap();
        let towers = (0..n_domains)
            .map(|d| {
                Mlp::new(
                    builder,
                    &format!("cgc/tower{d}"),
                    &[out, TOWER_HIDDEN, 1],
                    Activation::Linear,
                    0.0,
                )
            })
            .collect();
        Cgc { fields, block, towers }
    }
}

impl CtrModel for Cgc {
    fn name(&self) -> &str {
        "CGC"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let x = self.fields.concat(ps, tape, batch);
        let fused = self.block.forward(ps, tape, ctx, x, batch.domain, batch.len());
        self.towers[batch.domain].forward(ps, tape, ctx, fused)
    }
}

/// Progressive Layered Extraction: two stacked CGC blocks (the second
/// consumes the first's fused representation) plus per-domain towers.
pub struct Ple {
    fields: FieldEmbeddings,
    block1: CgcBlock,
    block2: CgcBlock,
    towers: Vec<Mlp>,
}

impl Ple {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
        n_domains: usize,
    ) -> Self {
        assert!(n_domains >= 1);
        let fields = FieldEmbeddings::new(builder, "ple", features, config);
        let h = *config.hidden.last().unwrap();
        let block1 = CgcBlock::new(
            builder,
            "ple/l0",
            fields.concat_dim(),
            &config.hidden,
            config.n_experts,
            n_domains,
            config.dropout,
        );
        let block2 =
            CgcBlock::new(builder, "ple/l1", h, &[h], config.n_experts, n_domains, config.dropout);
        let towers = (0..n_domains)
            .map(|d| {
                Mlp::new(
                    builder,
                    &format!("ple/tower{d}"),
                    &[h, TOWER_HIDDEN, 1],
                    Activation::Linear,
                    0.0,
                )
            })
            .collect();
        Ple { fields, block1, block2, towers }
    }
}

impl CtrModel for Ple {
    fn name(&self) -> &str {
        "PLE"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let x = self.fields.concat(ps, tape, batch);
        let f1 = self.block1.forward(ps, tape, ctx, x, batch.domain, batch.len());
        let f2 = self.block2.forward(ps, tape, ctx, f1, batch.domain, batch.len());
        self.towers[batch.domain].forward(ps, tape, ctx, f2)
    }
}

/// One STAR fully connected layer: shared weights element-wise multiplied by
/// per-domain weights (`W = W_s ⊙ W_d`), biases added (`b = b_s + b_d`).
struct StarLayer {
    w_shared: usize,
    b_shared: usize,
    w_domain: Vec<usize>,
    b_domain: Vec<usize>,
    activation: Activation,
}

impl StarLayer {
    fn new(
        builder: &mut ParamStoreBuilder,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        n_domains: usize,
        activation: Activation,
    ) -> Self {
        let init = match activation {
            Activation::Relu => Init::HeNormal,
            _ => Init::XavierNormal,
        };
        let w_shared = builder.register(format!("{name}/ws"), &[in_dim, out_dim], init);
        let b_shared = builder.register(format!("{name}/bs"), &[out_dim], Init::Zeros);
        // Per-domain masks start at identity (ones / zeros), so at init the
        // star layer equals its shared layer — as in the STAR paper.
        let w_domain = (0..n_domains)
            .map(|d| {
                builder.register(format!("{name}/wd{d}"), &[in_dim, out_dim], Init::Constant(1.0))
            })
            .collect();
        let b_domain = (0..n_domains)
            .map(|d| builder.register(format!("{name}/bd{d}"), &[out_dim], Init::Zeros))
            .collect();
        StarLayer { w_shared, b_shared, w_domain, b_domain, activation }
    }

    fn forward(&self, ps: &ParamStore, tape: &mut Tape, x: Var, domain: usize) -> Var {
        let ws = tape.param(self.w_shared, ps.get(self.w_shared).clone());
        let wd = tape.param(self.w_domain[domain], ps.get(self.w_domain[domain]).clone());
        let bs = tape.param(self.b_shared, ps.get(self.b_shared).clone());
        let bd = tape.param(self.b_domain[domain], ps.get(self.b_domain[domain]).clone());
        let w = tape.mul(ws, wd);
        let b = tape.add(bs, bd);
        tape.dense(x, w, Some(b), self.activation.into())
    }
}

/// STAR (Star Topology Adaptive Recommender): partitioned normalization,
/// a star-topology FCN with shared ⊙ domain-specific weights, and an
/// auxiliary domain-indicator network added to the main logit.
pub struct Star {
    fields: FieldEmbeddings,
    pn_gamma: Vec<usize>,
    pn_beta: Vec<usize>,
    layers: Vec<StarLayer>,
    aux_domain_emb: Embedding,
    aux_head: Dense,
}

impl Star {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
        n_domains: usize,
    ) -> Self {
        assert!(n_domains >= 1);
        let fields = FieldEmbeddings::new(builder, "star", features, config);
        let in_dim = fields.concat_dim();
        // Partitioned normalization: per-domain scale and bias.
        let pn_gamma = (0..n_domains)
            .map(|d| builder.register(format!("star/pn_gamma{d}"), &[in_dim], Init::Constant(1.0)))
            .collect();
        let pn_beta = (0..n_domains)
            .map(|d| builder.register(format!("star/pn_beta{d}"), &[in_dim], Init::Zeros))
            .collect();
        let mut dims = vec![in_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let layers = (0..dims.len() - 1)
            .map(|i| {
                let act = if i + 2 == dims.len() { Activation::Linear } else { Activation::Relu };
                StarLayer::new(builder, &format!("star/l{i}"), dims[i], dims[i + 1], n_domains, act)
            })
            .collect();
        let aux_domain_emb = Embedding::new(builder, "star/aux_emb", n_domains, config.embed_dim);
        let aux_head =
            Dense::new(builder, "star/aux_head", config.embed_dim + in_dim, 1, Activation::Linear);
        Star { fields, pn_gamma, pn_beta, layers, aux_domain_emb, aux_head }
    }
}

impl CtrModel for Star {
    fn name(&self) -> &str {
        "Star"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let _ = ctx;
        let d = batch.domain;
        let x = self.fields.concat(ps, tape, batch);

        // Partitioned normalization: batch-normalize, then domain scale/bias.
        let z = tape.normalize_rows(x, 1e-5);
        let gamma = tape.param(self.pn_gamma[d], ps.get(self.pn_gamma[d]).clone());
        let beta = tape.param(self.pn_beta[d], ps.get(self.pn_beta[d]).clone());
        let gamma_rows = tape.reshape(gamma, &[1, tape.value(z).shape()[1]]);
        let z = {
            // Row-broadcast multiply via mul_row is only available on
            // tensors; emulate with an explicit broadcast through MulCol's
            // transpose-free path: z ⊙ γ per row.
            let zt = tape.transpose(z);
            let gcol = tape.reshape(gamma_rows, &[tape.value(zt).shape()[0]]);
            let scaled = tape.mul_col(zt, gcol);
            let back = tape.transpose(scaled);
            tape.add_row(back, beta)
        };

        // Star-topology FCN.
        let mut h = z;
        for layer in &self.layers {
            h = layer.forward(ps, tape, h, d);
        }

        // Auxiliary network: domain embedding + normalized input -> logit.
        let dom_ids = vec![d as u32; batch.len()];
        let dom_emb = self.aux_domain_emb.forward(ps, tape, &dom_ids);
        let aux_in = tape.concat_cols(&[dom_emb, z]);
        let aux = self.aux_head.forward(ps, tape, aux_in);
        tape.add(h, aux)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{eval_logits, loss_and_grads};
    use mamdr_data::{make_batch, DomainSpec, GeneratorConfig};
    use mamdr_tensor::rng::seeded;

    fn fixture() -> (mamdr_data::MdrDataset, FeatureConfig, ModelConfig) {
        let mut cfg = GeneratorConfig::base("t", 30, 20, 31);
        cfg.domains = vec![DomainSpec::new("a", 150, 0.3), DomainSpec::new("b", 100, 0.4)];
        let ds = cfg.generate();
        let fc = FeatureConfig::from_dataset(&ds);
        (ds, fc, ModelConfig::tiny())
    }

    #[test]
    fn star_equals_shared_at_init_mask() {
        // With domain masks at ones/zeros (their init), two domains' star
        // FCNs coincide; only PN params and the aux net differ, and those are
        // also identical at init — so logits must match across domains.
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = Star::new(&mut b, &fc, &mc, 2);
        let ps = b.build(&mut seeded(4));
        let inter = &ds.domains[0].train[..6];
        let mut batch0 = make_batch(&ds, 0, inter);
        batch0.domain = 0;
        let mut batch1 = batch0.clone();
        batch1.domain = 1;
        let l0 = eval_logits(&model, &ps, &batch0);
        let l1 = eval_logits(&model, &ps, &batch1);
        // The aux domain embedding is random-initialized, so allow its tiny
        // contribution (N(0,0.01) embeddings through one linear layer).
        for (a, b) in l0.iter().zip(&l1) {
            assert!((a - b).abs() < 0.1, "star domains diverged at init: {} vs {}", a, b);
        }
    }

    #[test]
    fn gated_mixture_weights_sum_to_one() {
        // With identical experts, the mixture must equal each expert exactly
        // (softmax weights sum to 1).
        let mut tape = Tape::new();
        let e = tape.leaf(mamdr_tensor::Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]));
        let gate_logits =
            tape.leaf(mamdr_tensor::Tensor::from_vec([2, 2], vec![0.3, -1.0, 2.0, 2.0]));
        let mixed = gated_mixture(&mut tape, gate_logits, &[e, e], 2);
        assert!(tape.value(mixed).max_abs_diff(tape.value(e)) < 1e-5);
    }

    #[test]
    fn tower_gradients_stay_in_domain() {
        // Training on domain 0 must not touch domain 1's tower parameters.
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = SharedBottom::new(&mut b, &fc, &mc, 2);
        let ps = b.build(&mut seeded(5));
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..8]);
        let mut rng = seeded(6);
        let mut ctx = ForwardCtx::train(&mut rng);
        let (_, grads) = loss_and_grads(&model, &ps, &batch, &mut ctx);
        for (i, spec, _) in ps.iter() {
            if spec.name.starts_with("sb/tower1") {
                assert!(!grads.contains_key(&i), "{} received gradient", spec.name);
            }
            if spec.name.starts_with("sb/tower0") {
                assert!(grads.contains_key(&i), "{} missing gradient", spec.name);
            }
        }
    }

    #[test]
    fn cgc_uses_only_own_domain_experts() {
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = Cgc::new(&mut b, &fc, &mc, 2);
        let ps = b.build(&mut seeded(7));
        let batch = make_batch(&ds, 1, &ds.domains[1].train[..8]);
        let mut rng = seeded(8);
        let mut ctx = ForwardCtx::train(&mut rng);
        let (_, grads) = loss_and_grads(&model, &ps, &batch, &mut ctx);
        for (i, spec, _) in ps.iter() {
            if spec.name.starts_with("cgc/l0/d0e") {
                assert!(!grads.contains_key(&i), "{} received gradient", spec.name);
            }
            if spec.name.starts_with("cgc/l0/se") && spec.name.ends_with("/w") {
                assert!(grads.contains_key(&i), "{} missing gradient", spec.name);
            }
        }
    }

    #[test]
    fn ple_stacks_two_blocks() {
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = Ple::new(&mut b, &fc, &mc, 2);
        let ps = b.build(&mut seeded(9));
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..4]);
        let logits = eval_logits(&model, &ps, &batch);
        assert_eq!(logits.len(), 4);
        // Both extraction layers registered parameters.
        assert!(ps.index_of("ple/l0/se0/l0/w").is_some());
        assert!(ps.index_of("ple/l1/se0/l0/w").is_some());
    }

    #[test]
    fn mmoe_gate_responds_to_domain() {
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = Mmoe::new(&mut b, &fc, &mc, 2);
        let mut ps = b.build(&mut seeded(10));
        // Make the two gates differ strongly.
        let g0 = ps.index_of("mmoe/gate0/w").unwrap();
        ps.get_mut(g0).map_inplace(|_| 1.0);
        let g1 = ps.index_of("mmoe/gate1/w").unwrap();
        ps.get_mut(g1).map_inplace(|_| -1.0);
        let inter = &ds.domains[0].train[..5];
        let mut b0 = make_batch(&ds, 0, inter);
        b0.domain = 0;
        let mut b1 = b0.clone();
        b1.domain = 1;
        assert_ne!(eval_logits(&model, &ps, &b0), eval_logits(&model, &ps, &b1));
    }
}
