//! Shared feature encoding: every architecture starts from the same field
//! embeddings over the dataset's global feature storage (paper Fig. 2).

use crate::config::{FeatureConfig, ModelConfig};
use mamdr_autodiff::{Tape, Var};
use mamdr_data::Batch;
use mamdr_nn::{Activation, Dense, Embedding, ParamStore, ParamStoreBuilder};

/// Field embeddings: user id, item id, user group, item category, and —
/// when the dataset carries frozen dense features — a learned projection of
/// those features as a fifth field.
#[derive(Debug, Clone)]
pub struct FieldEmbeddings {
    user: Embedding,
    item: Embedding,
    user_group: Embedding,
    item_cat: Embedding,
    dense_proj: Option<Dense>,
    embed_dim: usize,
}

impl FieldEmbeddings {
    /// Registers the embedding tables (and dense projection if needed).
    pub fn new(
        builder: &mut ParamStoreBuilder,
        name: &str,
        features: &FeatureConfig,
        config: &ModelConfig,
    ) -> Self {
        let d = config.embed_dim;
        let user = Embedding::new(builder, &format!("{name}/emb_user"), features.n_users, d);
        let item = Embedding::new(builder, &format!("{name}/emb_item"), features.n_items, d);
        let user_group =
            Embedding::new(builder, &format!("{name}/emb_ugroup"), features.n_user_groups, d);
        let item_cat =
            Embedding::new(builder, &format!("{name}/emb_icat"), features.n_item_cats, d);
        let dense_proj = (features.dense_dim > 0).then(|| {
            Dense::new(
                builder,
                &format!("{name}/dense_proj"),
                2 * features.dense_dim,
                d,
                Activation::Linear,
            )
        });
        FieldEmbeddings { user, item, user_group, item_cat, dense_proj, embed_dim: d }
    }

    /// Number of fields produced by [`FieldEmbeddings::fields`].
    pub fn n_fields(&self) -> usize {
        4 + usize::from(self.dense_proj.is_some())
    }

    /// Embedding width per field.
    pub fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Width of the concatenated field vector.
    pub fn concat_dim(&self) -> usize {
        self.n_fields() * self.embed_dim
    }

    /// Looks up every field for a batch, each as a `[b, embed_dim]` node.
    pub fn fields(&self, ps: &ParamStore, tape: &mut Tape, batch: &Batch) -> Vec<Var> {
        let mut fields = vec![
            self.user.forward(ps, tape, &batch.users),
            self.item.forward(ps, tape, &batch.items),
            self.user_group.forward(ps, tape, &batch.user_groups),
            self.item_cat.forward(ps, tape, &batch.item_cats),
        ];
        if let Some(proj) = &self.dense_proj {
            let du = batch
                .dense_user
                .as_ref()
                .expect("model built with dense features but batch has none");
            let di = batch
                .dense_item
                .as_ref()
                .expect("model built with dense features but batch has none");
            let dense = mamdr_tensor::Tensor::concat_cols(&[du, di]);
            let dense = tape.leaf(dense);
            fields.push(proj.forward(ps, tape, dense));
        }
        fields
    }

    /// Fields concatenated to `[b, n_fields * embed_dim]`.
    pub fn concat(&self, ps: &ParamStore, tape: &mut Tape, batch: &Batch) -> Var {
        let fields = self.fields(ps, tape, batch);
        tape.concat_cols(&fields)
    }
}

/// First-order (linear) embeddings: one scalar weight per categorical value,
/// used by WDL's wide part and DeepFM's FM first-order term.
#[derive(Debug, Clone)]
pub struct LinearEmbeddings {
    user: Embedding,
    item: Embedding,
    user_group: Embedding,
    item_cat: Embedding,
}

impl LinearEmbeddings {
    /// Registers the dim-1 tables.
    pub fn new(builder: &mut ParamStoreBuilder, name: &str, features: &FeatureConfig) -> Self {
        LinearEmbeddings {
            user: Embedding::new(builder, &format!("{name}/lin_user"), features.n_users, 1),
            item: Embedding::new(builder, &format!("{name}/lin_item"), features.n_items, 1),
            user_group: Embedding::new(
                builder,
                &format!("{name}/lin_ugroup"),
                features.n_user_groups,
                1,
            ),
            item_cat: Embedding::new(builder, &format!("{name}/lin_icat"), features.n_item_cats, 1),
        }
    }

    /// Sum of the first-order weights for a batch: `[b, 1]`.
    pub fn forward(&self, ps: &ParamStore, tape: &mut Tape, batch: &Batch) -> Var {
        let u = self.user.forward(ps, tape, &batch.users);
        let v = self.item.forward(ps, tape, &batch.items);
        let g = self.user_group.forward(ps, tape, &batch.user_groups);
        let c = self.item_cat.forward(ps, tape, &batch.item_cats);
        let uv = tape.add(u, v);
        let gc = tape.add(g, c);
        tape.add(uv, gc)
    }
}

/// Bi-interaction pooling over field embeddings:
/// `0.5 * ((Σᵢ eᵢ)² − Σᵢ eᵢ²)`, the FM second-order interaction in vector
/// form (NeurFM Eq. 4 / DeepFM's FM component).
pub fn bi_interaction(tape: &mut Tape, fields: &[Var]) -> Var {
    assert!(fields.len() >= 2, "bi-interaction needs at least two fields");
    let mut sum = fields[0];
    for &f in &fields[1..] {
        sum = tape.add(sum, f);
    }
    let sum_sq = tape.square(sum);
    let mut sq_sum = tape.square(fields[0]);
    for &f in &fields[1..] {
        let sq = tape.square(f);
        sq_sum = tape.add(sq_sum, sq);
    }
    let diff = tape.sub(sum_sq, sq_sum);
    tape.scalar_mul(diff, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_data::{make_batch, DomainSpec, GeneratorConfig};
    use mamdr_tensor::rng::seeded;

    fn setup(dense: usize) -> (mamdr_data::MdrDataset, FeatureConfig) {
        let mut cfg = GeneratorConfig::base("t", 30, 20, 3);
        cfg.dense_dim = dense;
        cfg.domains = vec![DomainSpec::new("a", 120, 0.3)];
        let ds = cfg.generate();
        let fc = FeatureConfig::from_dataset(&ds);
        (ds, fc)
    }

    #[test]
    fn fields_shapes_without_dense() {
        let (ds, fc) = setup(0);
        let mc = ModelConfig::tiny();
        let mut b = ParamStoreBuilder::new();
        let fe = FieldEmbeddings::new(&mut b, "f", &fc, &mc);
        let ps = b.build(&mut seeded(0));
        assert_eq!(fe.n_fields(), 4);
        assert_eq!(fe.concat_dim(), 16);
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..6]);
        let mut tape = Tape::new();
        let fields = fe.fields(&ps, &mut tape, &batch);
        assert_eq!(fields.len(), 4);
        for f in &fields {
            assert_eq!(tape.value(*f).shape(), &[6, 4]);
        }
        let cat = fe.concat(&ps, &mut tape, &batch);
        assert_eq!(tape.value(cat).shape(), &[6, 16]);
    }

    #[test]
    fn fields_include_dense_projection() {
        let (ds, fc) = setup(5);
        let mc = ModelConfig::tiny();
        let mut b = ParamStoreBuilder::new();
        let fe = FieldEmbeddings::new(&mut b, "f", &fc, &mc);
        let ps = b.build(&mut seeded(0));
        assert_eq!(fe.n_fields(), 5);
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..3]);
        let mut tape = Tape::new();
        let fields = fe.fields(&ps, &mut tape, &batch);
        assert_eq!(fields.len(), 5);
        assert_eq!(tape.value(fields[4]).shape(), &[3, 4]);
    }

    #[test]
    fn linear_embeddings_sum() {
        let (ds, fc) = setup(0);
        let mut b = ParamStoreBuilder::new();
        let le = LinearEmbeddings::new(&mut b, "l", &fc);
        let ps = b.build(&mut seeded(1));
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..4]);
        let mut tape = Tape::new();
        let out = le.forward(&ps, &mut tape, &batch);
        assert_eq!(tape.value(out).shape(), &[4, 1]);
    }

    #[test]
    fn bi_interaction_matches_pairwise_sum() {
        // 0.5((Σe)² − Σe²) must equal Σ_{i<j} eᵢ ⊙ eⱼ.
        let mut tape = Tape::new();
        let a = tape.leaf(mamdr_tensor::Tensor::from_vec([1, 2], vec![1.0, 2.0]));
        let b = tape.leaf(mamdr_tensor::Tensor::from_vec([1, 2], vec![3.0, -1.0]));
        let c = tape.leaf(mamdr_tensor::Tensor::from_vec([1, 2], vec![0.5, 4.0]));
        let bi = bi_interaction(&mut tape, &[a, b, c]);
        let got = tape.value(bi).data().to_vec();
        // pairwise: a*b + a*c + b*c
        let expect = [1.0 * 3.0 + 1.0 * 0.5 + 3.0 * 0.5, -2.0 + 2.0 * 4.0 + -4.0];
        assert!((got[0] - expect[0]).abs() < 1e-5);
        assert!((got[1] - expect[1]).abs() < 1e-5);
    }
}
