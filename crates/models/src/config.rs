//! Model configuration and the architecture registry.

use mamdr_data::MdrDataset;

/// Sizes of the categorical/dense feature spaces a model embeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of user-group values.
    pub n_user_groups: usize,
    /// Number of item-category values.
    pub n_item_cats: usize,
    /// Width of the frozen dense features (0 when the dataset has none).
    pub dense_dim: usize,
}

impl FeatureConfig {
    /// Reads the feature spaces off a dataset.
    pub fn from_dataset(ds: &MdrDataset) -> Self {
        FeatureConfig {
            n_users: ds.n_users,
            n_items: ds.n_items,
            n_user_groups: ds.n_user_groups,
            n_item_cats: ds.n_item_cats,
            dense_dim: ds.dense_dim(),
        }
    }
}

/// Hyper-parameters shared by all architectures.
///
/// Defaults are the paper's settings scaled to the synthetic benchmark size
/// (the paper: embedding 128, hidden `[256,128,64]`, dropout 0.5).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Embedding width per field.
    pub embed_dim: usize,
    /// Hidden widths of the deep towers.
    pub hidden: Vec<usize>,
    /// Dropout probability between hidden layers.
    pub dropout: f32,
    /// Number of experts (MMoE/CGC/PLE).
    pub n_experts: usize,
    /// Attention width per head (AutoInt).
    pub att_dim: usize,
    /// Attention heads (AutoInt).
    pub att_heads: usize,
    /// Stacked interacting layers (AutoInt).
    pub att_layers: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            embed_dim: 16,
            hidden: vec![64, 32],
            dropout: 0.2,
            n_experts: 2,
            att_dim: 16,
            att_heads: 2,
            att_layers: 1,
        }
    }
}

impl ModelConfig {
    /// A small configuration for fast tests.
    pub fn tiny() -> Self {
        ModelConfig {
            embed_dim: 4,
            hidden: vec![8],
            dropout: 0.0,
            n_experts: 2,
            att_dim: 4,
            att_heads: 1,
            att_layers: 1,
        }
    }
}

/// The architecture registry: one entry per model row in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Plain multi-layer perceptron (the paper's base model for MAMDR).
    Mlp,
    /// Wide & Deep Learning (Cheng et al.).
    Wdl,
    /// Neural Factorization Machine (He & Chua).
    NeurFm,
    /// AutoInt self-attentive interaction model (Song et al.).
    AutoInt,
    /// DeepFM (Guo et al.).
    DeepFm,
    /// Shared-Bottom multi-task model (Ruder).
    SharedBottom,
    /// Multi-gate Mixture-of-Experts (Ma et al.).
    Mmoe,
    /// Customized Gate Control — single-layer PLE (Tang et al.).
    Cgc,
    /// Progressive Layered Extraction (Tang et al.).
    Ple,
    /// Star Topology Adaptive Recommender (Sheng et al.).
    Star,
    /// The in-production "RAW" model the industry experiments wrap.
    Raw,
}

impl ModelKind {
    /// Every architecture, in the paper's table order.
    pub const ALL: [ModelKind; 11] = [
        ModelKind::Mlp,
        ModelKind::Wdl,
        ModelKind::NeurFm,
        ModelKind::AutoInt,
        ModelKind::DeepFm,
        ModelKind::SharedBottom,
        ModelKind::Mmoe,
        ModelKind::Cgc,
        ModelKind::Ple,
        ModelKind::Star,
        ModelKind::Raw,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Mlp => "MLP",
            ModelKind::Wdl => "WDL",
            ModelKind::NeurFm => "NeurFM",
            ModelKind::AutoInt => "AutoInt",
            ModelKind::DeepFm => "DeepFM",
            ModelKind::SharedBottom => "Shared-Bottom",
            ModelKind::Mmoe => "MMOE",
            ModelKind::Cgc => "CGC",
            ModelKind::Ple => "PLE",
            ModelKind::Star => "Star",
            ModelKind::Raw => "RAW",
        }
    }

    /// True for architectures with per-domain structure (they need the
    /// domain count at construction).
    pub fn is_multi_domain(self) -> bool {
        matches!(
            self,
            ModelKind::SharedBottom
                | ModelKind::Mmoe
                | ModelKind::Cgc
                | ModelKind::Ple
                | ModelKind::Star
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ModelKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ModelKind::ALL.len());
    }

    #[test]
    fn multi_domain_flags() {
        assert!(!ModelKind::Mlp.is_multi_domain());
        assert!(!ModelKind::DeepFm.is_multi_domain());
        assert!(ModelKind::Star.is_multi_domain());
        assert!(ModelKind::Ple.is_multi_domain());
    }
}
