//! The model interface the learning frameworks train against.

use crate::config::{FeatureConfig, ModelConfig, ModelKind};
use crate::multi::{Cgc, Mmoe, Ple, SharedBottom, Star};
use crate::single::{AutoInt, DeepFm, MlpModel, NeurFm, Raw, Wdl};
use mamdr_autodiff::tape::stable_sigmoid;
use mamdr_autodiff::{Tape, Var};
use mamdr_data::Batch;
use mamdr_nn::{ForwardCtx, ParamStore, ParamStoreBuilder};
use mamdr_tensor::rng::seeded;
use mamdr_tensor::Tensor;
use std::collections::HashMap;

/// A CTR model: registers parameters at construction, replays its forward
/// pass per batch.
///
/// The output is a `[b]`-shaped logits node. Implementations must be pure
/// functions of `(ps, batch, ctx)` so the frameworks can swap parameter
/// vectors underneath them.
pub trait CtrModel: Send + Sync {
    /// Architecture name (matches the paper's tables).
    fn name(&self) -> &str;

    /// Builds the logits node for a batch.
    fn forward(&self, ps: &ParamStore, tape: &mut Tape, ctx: &mut ForwardCtx, batch: &Batch)
        -> Var;
}

/// A constructed model together with its freshly initialized parameters.
pub struct BuiltModel {
    /// The architecture.
    pub model: Box<dyn CtrModel>,
    /// Its initialized parameter store.
    pub params: ParamStore,
}

/// Builds a model of `kind` for the given feature spaces.
///
/// `n_domains` is consumed by the multi-domain architectures
/// (Shared-Bottom, MMoE, CGC, PLE, STAR) and ignored by the single-domain
/// ones. Initialization is deterministic in `seed`.
pub fn build_model(
    kind: ModelKind,
    features: &FeatureConfig,
    config: &ModelConfig,
    n_domains: usize,
    seed: u64,
) -> BuiltModel {
    let mut builder = ParamStoreBuilder::new();
    let model: Box<dyn CtrModel> = match kind {
        ModelKind::Mlp => Box::new(MlpModel::new(&mut builder, features, config)),
        ModelKind::Wdl => Box::new(Wdl::new(&mut builder, features, config)),
        ModelKind::NeurFm => Box::new(NeurFm::new(&mut builder, features, config)),
        ModelKind::AutoInt => Box::new(AutoInt::new(&mut builder, features, config)),
        ModelKind::DeepFm => Box::new(DeepFm::new(&mut builder, features, config)),
        ModelKind::Raw => Box::new(Raw::new(&mut builder, features, config)),
        ModelKind::SharedBottom => {
            Box::new(SharedBottom::new(&mut builder, features, config, n_domains))
        }
        ModelKind::Mmoe => Box::new(Mmoe::new(&mut builder, features, config, n_domains)),
        ModelKind::Cgc => Box::new(Cgc::new(&mut builder, features, config, n_domains)),
        ModelKind::Ple => Box::new(Ple::new(&mut builder, features, config, n_domains)),
        ModelKind::Star => Box::new(Star::new(&mut builder, features, config, n_domains)),
    };
    let params = builder.build(&mut seeded(seed));
    BuiltModel { model, params }
}

/// One training evaluation: mean BCE loss and the gradient of every touched
/// parameter.
///
/// This is the *entire* interface the model-agnostic frameworks use — they
/// never see the architecture.
pub fn loss_and_grads(
    model: &dyn CtrModel,
    ps: &ParamStore,
    batch: &Batch,
    ctx: &mut ForwardCtx,
) -> (f32, HashMap<usize, Tensor>) {
    let mut tape = Tape::new();
    let logits = model.forward(ps, &mut tape, ctx, batch);
    let flat = flatten_logits(&mut tape, logits, batch.len());
    let loss = tape.bce_with_logits_mean(flat, batch.labels_tensor());
    let loss_value = tape.value(loss).item();
    let grads = tape.backward(loss);
    (loss_value, grads)
}

/// Evaluation-mode logits for a batch (no dropout, no tape retained).
pub fn eval_logits(model: &dyn CtrModel, ps: &ParamStore, batch: &Batch) -> Vec<f32> {
    let mut rng = seeded(0); // eval path never draws from it
    let mut ctx = ForwardCtx::eval(&mut rng);
    let mut tape = Tape::new();
    let logits = model.forward(ps, &mut tape, &mut ctx, batch);
    let flat = flatten_logits(&mut tape, logits, batch.len());
    tape.value(flat).data().to_vec()
}

/// Evaluation-mode click probabilities for a batch.
pub fn predict_probs(model: &dyn CtrModel, ps: &ParamStore, batch: &Batch) -> Vec<f32> {
    eval_logits(model, ps, batch).into_iter().map(stable_sigmoid).collect()
}

/// Normalizes a logits node to shape `[b]` whether the head emitted `[b]`
/// or `[b, 1]`.
fn flatten_logits(tape: &mut Tape, logits: Var, batch_len: usize) -> Var {
    let shape = tape.value(logits).shape().to_vec();
    match shape.as_slice() {
        [n] => {
            assert_eq!(*n, batch_len, "logit count != batch size");
            logits
        }
        [n, 1] => {
            assert_eq!(*n, batch_len, "logit count != batch size");
            tape.reshape(logits, &[batch_len])
        }
        other => panic!("unexpected logits shape {:?}", other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mamdr_data::{make_batch, DomainSpec, GeneratorConfig, MdrDataset};
    use mamdr_nn::vecmath;

    fn dataset(dense: usize) -> MdrDataset {
        let mut cfg = GeneratorConfig::base("t", 40, 25, 11);
        cfg.dense_dim = dense;
        cfg.domains = vec![DomainSpec::new("a", 200, 0.3), DomainSpec::new("b", 150, 0.4)];
        cfg.generate()
    }

    #[test]
    fn every_architecture_builds_and_runs() {
        for dense in [0usize, 6] {
            let ds = dataset(dense);
            let fc = FeatureConfig::from_dataset(&ds);
            let mc = ModelConfig::tiny();
            let batch = make_batch(&ds, 1, &ds.domains[1].train[..7]);
            for kind in ModelKind::ALL {
                let built = build_model(kind, &fc, &mc, ds.n_domains(), 5);
                let logits = eval_logits(built.model.as_ref(), &built.params, &batch);
                assert_eq!(logits.len(), 7, "{} logits", kind.name());
                assert!(
                    logits.iter().all(|x| x.is_finite()),
                    "{} produced non-finite logits",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn every_architecture_has_nonzero_gradients() {
        let ds = dataset(6);
        let fc = FeatureConfig::from_dataset(&ds);
        let mc = ModelConfig::tiny();
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..16]);
        for kind in ModelKind::ALL {
            let built = build_model(kind, &fc, &mc, ds.n_domains(), 6);
            let mut rng = seeded(7);
            let mut ctx = ForwardCtx::train(&mut rng);
            let (loss, grads) =
                loss_and_grads(built.model.as_ref(), &built.params, &batch, &mut ctx);
            assert!(loss.is_finite() && loss > 0.0, "{} loss {}", kind.name(), loss);
            let flat = built.params.grads_to_flat(&grads);
            assert!(vecmath::norm(&flat) > 0.0, "{} gradient is identically zero", kind.name());
            assert!(flat.iter().all(|x| x.is_finite()), "{} grad non-finite", kind.name());
        }
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        // Sanity: a gradient step on the same batch must reduce the loss for
        // every architecture.
        let ds = dataset(6);
        let fc = FeatureConfig::from_dataset(&ds);
        let mc = ModelConfig::tiny();
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..32]);
        for kind in ModelKind::ALL {
            let mut built = build_model(kind, &fc, &mc, ds.n_domains(), 8);
            let mut rng = seeded(9);
            let mut ctx = ForwardCtx::eval(&mut rng); // deterministic forward
            let (loss0, grads) =
                loss_and_grads(built.model.as_ref(), &built.params, &batch, &mut ctx);
            let mut flat = built.params.to_flat();
            let g = built.params.grads_to_flat(&grads);
            vecmath::axpy(&mut flat, -0.05, &g);
            built.params.load_flat(&flat);
            let mut ctx = ForwardCtx::eval(&mut rng);
            let (loss1, _) = loss_and_grads(built.model.as_ref(), &built.params, &batch, &mut ctx);
            assert!(
                loss1 < loss0,
                "{}: loss did not decrease ({} -> {})",
                kind.name(),
                loss0,
                loss1
            );
        }
    }

    #[test]
    fn predictions_are_probabilities() {
        let ds = dataset(0);
        let fc = FeatureConfig::from_dataset(&ds);
        let built = build_model(ModelKind::DeepFm, &fc, &ModelConfig::tiny(), 2, 3);
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..9]);
        let probs = predict_probs(built.model.as_ref(), &built.params, &batch);
        assert_eq!(probs.len(), 9);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn multi_domain_models_route_by_batch_domain() {
        // The same interactions scored under different domain ids must give
        // different logits for domain-aware architectures.
        let ds = dataset(0);
        let fc = FeatureConfig::from_dataset(&ds);
        let mc = ModelConfig::tiny();
        let inter = &ds.domains[0].train[..8];
        let mut batch_a = make_batch(&ds, 0, inter);
        let batch_b = {
            batch_a.domain = 0;
            let mut b = batch_a.clone();
            b.domain = 1;
            b
        };
        for kind in [
            ModelKind::SharedBottom,
            ModelKind::Mmoe,
            ModelKind::Cgc,
            ModelKind::Ple,
            ModelKind::Star,
        ] {
            let built = build_model(kind, &fc, &mc, 2, 10);
            // Nudge all params away from init symmetry so towers differ.
            let mut params = built.params.clone();
            let mut flat = params.to_flat();
            for (i, x) in flat.iter_mut().enumerate() {
                *x += 0.01 * ((i % 17) as f32 - 8.0);
            }
            params.load_flat(&flat);
            let la = eval_logits(built.model.as_ref(), &params, &batch_a);
            let lb = eval_logits(built.model.as_ref(), &params, &batch_b);
            assert_ne!(la, lb, "{} ignores batch.domain", kind.name());
        }
    }
}
