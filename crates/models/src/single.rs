//! Single-domain CTR architectures (paper Table V, upper block).
//!
//! These models have no structural notion of a domain; under multi-domain
//! training they are either trained alternately on all domains' data or
//! wrapped by a model-agnostic framework from `mamdr-core`.

use crate::config::{FeatureConfig, ModelConfig};
use crate::features::{bi_interaction, FieldEmbeddings, LinearEmbeddings};
use crate::model::CtrModel;
use mamdr_autodiff::{Tape, Var};
use mamdr_data::Batch;
use mamdr_nn::{
    layers::apply_dropout, Activation, Dense, Embedding, ForwardCtx, Mlp, ParamStore,
    ParamStoreBuilder,
};

/// Plain multi-layer perceptron over concatenated field embeddings — the
/// base model MAMDR wraps in the paper's headline experiments.
pub struct MlpModel {
    fields: FieldEmbeddings,
    mlp: Mlp,
}

impl MlpModel {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
    ) -> Self {
        let fields = FieldEmbeddings::new(builder, "mlp", features, config);
        let mut dims = vec![fields.concat_dim()];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let mlp = Mlp::new(builder, "mlp/deep", &dims, Activation::Linear, config.dropout);
        MlpModel { fields, mlp }
    }
}

impl CtrModel for MlpModel {
    fn name(&self) -> &str {
        "MLP"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let x = self.fields.concat(ps, tape, batch);
        self.mlp.forward(ps, tape, ctx, x)
    }
}

/// Wide & Deep: a linear "wide" part over raw ids plus an explicit
/// group×category cross feature, and a deep MLP part.
pub struct Wdl {
    fields: FieldEmbeddings,
    linear: LinearEmbeddings,
    cross: Embedding,
    n_item_cats: usize,
    mlp: Mlp,
}

impl Wdl {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
    ) -> Self {
        let fields = FieldEmbeddings::new(builder, "wdl", features, config);
        let linear = LinearEmbeddings::new(builder, "wdl", features);
        // Cross-product feature: (user_group, item_cat) hashed to one id.
        let cross =
            Embedding::new(builder, "wdl/cross", features.n_user_groups * features.n_item_cats, 1);
        let mut dims = vec![fields.concat_dim()];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let mlp = Mlp::new(builder, "wdl/deep", &dims, Activation::Linear, config.dropout);
        Wdl { fields, linear, cross, n_item_cats: features.n_item_cats, mlp }
    }
}

impl CtrModel for Wdl {
    fn name(&self) -> &str {
        "WDL"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let x = self.fields.concat(ps, tape, batch);
        let deep = self.mlp.forward(ps, tape, ctx, x);
        let wide = self.linear.forward(ps, tape, batch);
        let cross_ids: Vec<u32> = batch
            .user_groups
            .iter()
            .zip(&batch.item_cats)
            .map(|(&g, &c)| g * self.n_item_cats as u32 + c)
            .collect();
        let cross = self.cross.forward(ps, tape, &cross_ids);
        let wide = tape.add(wide, cross);
        tape.add(deep, wide)
    }
}

/// Neural Factorization Machine: linear part + an MLP over the
/// bi-interaction pooling of the field embeddings.
pub struct NeurFm {
    fields: FieldEmbeddings,
    linear: LinearEmbeddings,
    mlp: Mlp,
    dropout: f32,
}

impl NeurFm {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
    ) -> Self {
        let fields = FieldEmbeddings::new(builder, "neurfm", features, config);
        let linear = LinearEmbeddings::new(builder, "neurfm", features);
        let mut dims = vec![config.embed_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let mlp = Mlp::new(builder, "neurfm/deep", &dims, Activation::Linear, config.dropout);
        NeurFm { fields, linear, mlp, dropout: config.dropout }
    }
}

impl CtrModel for NeurFm {
    fn name(&self) -> &str {
        "NeurFM"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let fields = self.fields.fields(ps, tape, batch);
        let mut bi = bi_interaction(tape, &fields);
        if self.dropout > 0.0 && ctx.training {
            bi = apply_dropout(tape, ctx, bi, self.dropout);
        }
        let deep = self.mlp.forward(ps, tape, ctx, bi);
        let lin = self.linear.forward(ps, tape, batch);
        tape.add(deep, lin)
    }
}

/// AutoInt: stacked multi-head self-attention ("interacting") layers over
/// the field embeddings, with residual connections, followed by a linear
/// head. `ModelConfig::att_layers` controls the stack depth (paper default
/// 1 at this scale; the original AutoInt uses up to 3).
pub struct AutoInt {
    fields: FieldEmbeddings,
    layers: Vec<InteractingLayer>,
    head_out: Dense,
}

/// One interacting layer: per-head Q/K/V projections plus a residual map
/// from the layer's input width to its output width.
struct InteractingLayer {
    heads: Vec<AttentionHead>,
    residual: Dense,
    att_dim: usize,
}

struct AttentionHead {
    wq: Dense,
    wk: Dense,
    wv: Dense,
}

impl InteractingLayer {
    fn new(
        builder: &mut ParamStoreBuilder,
        name: &str,
        in_dim: usize,
        att_dim: usize,
        n_heads: usize,
    ) -> Self {
        let heads = (0..n_heads)
            .map(|h| AttentionHead {
                wq: Dense::new(
                    builder,
                    &format!("{name}/h{h}/wq"),
                    in_dim,
                    att_dim,
                    Activation::Linear,
                ),
                wk: Dense::new(
                    builder,
                    &format!("{name}/h{h}/wk"),
                    in_dim,
                    att_dim,
                    Activation::Linear,
                ),
                wv: Dense::new(
                    builder,
                    &format!("{name}/h{h}/wv"),
                    in_dim,
                    att_dim,
                    Activation::Linear,
                ),
            })
            .collect();
        let residual = Dense::new(
            builder,
            &format!("{name}/res"),
            in_dim,
            n_heads * att_dim,
            Activation::Linear,
        );
        InteractingLayer { heads, residual, att_dim }
    }

    /// Output width per field.
    fn out_dim(&self) -> usize {
        self.heads.len() * self.att_dim
    }

    /// Maps per-field representations to attended per-field representations.
    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        fields: &[Var],
        batch_len: usize,
    ) -> Vec<Var> {
        let nf = fields.len();
        let scale = 1.0 / (self.att_dim as f32).sqrt();
        let mut outputs: Vec<Vec<Var>> = vec![Vec::new(); nf];
        for head in &self.heads {
            let qs: Vec<Var> = fields.iter().map(|&e| head.wq.forward(ps, tape, e)).collect();
            let ks: Vec<Var> = fields.iter().map(|&e| head.wk.forward(ps, tape, e)).collect();
            let vs: Vec<Var> = fields.iter().map(|&e| head.wv.forward(ps, tape, e)).collect();
            for i in 0..nf {
                // score_ij = <q_i, k_j> / sqrt(a), per example.
                let mut score_cols = Vec::with_capacity(nf);
                for k in ks.iter().take(nf) {
                    let prod = tape.mul(qs[i], *k);
                    let s = tape.sum_cols_keep(prod);
                    score_cols.push(tape.scalar_mul(s, scale));
                }
                let scores = tape.concat_cols(&score_cols);
                let attn = tape.softmax_rows(scores);
                // out_i = Σ_j attn_ij · v_j
                let mut acc: Option<Var> = None;
                for (j, v) in vs.iter().enumerate().take(nf) {
                    let aij = tape.slice_cols(attn, j, 1);
                    let aij = tape.reshape(aij, &[batch_len]);
                    let w = tape.mul_col(*v, aij);
                    acc = Some(match acc {
                        Some(prev) => tape.add(prev, w),
                        None => w,
                    });
                }
                outputs[i].push(acc.expect("at least one field"));
            }
        }
        // Residual + ReLU per field.
        outputs
            .into_iter()
            .enumerate()
            .map(|(i, heads_out)| {
                let multi = tape.concat_cols(&heads_out);
                let res = self.residual.forward(ps, tape, fields[i]);
                let sum = tape.add(multi, res);
                tape.relu(sum)
            })
            .collect()
    }
}

impl AutoInt {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
    ) -> Self {
        let fields = FieldEmbeddings::new(builder, "autoint", features, config);
        let n_layers = config.att_layers.max(1);
        let mut layers = Vec::with_capacity(n_layers);
        let mut width = config.embed_dim;
        for l in 0..n_layers {
            let layer = InteractingLayer::new(
                builder,
                &format!("autoint/l{l}"),
                width,
                config.att_dim,
                config.att_heads,
            );
            width = layer.out_dim();
            layers.push(layer);
        }
        let head_out =
            Dense::new(builder, "autoint/out", fields.n_fields() * width, 1, Activation::Linear);
        AutoInt { fields, layers, head_out }
    }
}

impl CtrModel for AutoInt {
    fn name(&self) -> &str {
        "AutoInt"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let _ = ctx;
        let mut fields = self.fields.fields(ps, tape, batch);
        for layer in &self.layers {
            fields = layer.forward(ps, tape, &fields, batch.len());
        }
        let cat = tape.concat_cols(&fields);
        self.head_out.forward(ps, tape, cat)
    }
}

/// DeepFM: FM first-order + FM second-order (bi-interaction summed) + deep
/// MLP, sharing one set of field embeddings.
pub struct DeepFm {
    fields: FieldEmbeddings,
    linear: LinearEmbeddings,
    mlp: Mlp,
}

impl DeepFm {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
    ) -> Self {
        let fields = FieldEmbeddings::new(builder, "deepfm", features, config);
        let linear = LinearEmbeddings::new(builder, "deepfm", features);
        let mut dims = vec![fields.concat_dim()];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let mlp = Mlp::new(builder, "deepfm/deep", &dims, Activation::Linear, config.dropout);
        DeepFm { fields, linear, mlp }
    }
}

impl CtrModel for DeepFm {
    fn name(&self) -> &str {
        "DeepFM"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let fields = self.fields.fields(ps, tape, batch);
        let lin = self.linear.forward(ps, tape, batch);
        let bi = bi_interaction(tape, &fields);
        let fm2 = tape.sum_cols_keep(bi);
        let cat = tape.concat_cols(&fields);
        let deep = self.mlp.forward(ps, tape, ctx, cat);
        let fm = tape.add(lin, fm2);
        tape.add(fm, deep)
    }
}

/// The "RAW" production model the industry experiments wrap: field
/// embeddings + deep MLP + a linear bypass (a WDL variant without the cross
/// feature, mirroring the serving model described in §V-F).
pub struct Raw {
    fields: FieldEmbeddings,
    linear: LinearEmbeddings,
    mlp: Mlp,
}

impl Raw {
    /// Registers the model's parameters.
    pub fn new(
        builder: &mut ParamStoreBuilder,
        features: &FeatureConfig,
        config: &ModelConfig,
    ) -> Self {
        let fields = FieldEmbeddings::new(builder, "raw", features, config);
        let linear = LinearEmbeddings::new(builder, "raw", features);
        let mut dims = vec![fields.concat_dim()];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let mlp = Mlp::new(builder, "raw/deep", &dims, Activation::Linear, config.dropout);
        Raw { fields, linear, mlp }
    }
}

impl CtrModel for Raw {
    fn name(&self) -> &str {
        "RAW"
    }

    fn forward(
        &self,
        ps: &ParamStore,
        tape: &mut Tape,
        ctx: &mut ForwardCtx,
        batch: &Batch,
    ) -> Var {
        let x = self.fields.concat(ps, tape, batch);
        let deep = self.mlp.forward(ps, tape, ctx, x);
        let lin = self.linear.forward(ps, tape, batch);
        tape.add(deep, lin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::eval_logits;
    use mamdr_data::{make_batch, DomainSpec, GeneratorConfig};
    use mamdr_tensor::rng::seeded;

    fn fixture() -> (mamdr_data::MdrDataset, FeatureConfig, ModelConfig) {
        let mut cfg = GeneratorConfig::base("t", 30, 20, 21);
        cfg.domains = vec![DomainSpec::new("a", 150, 0.3)];
        let ds = cfg.generate();
        let fc = FeatureConfig::from_dataset(&ds);
        (ds, fc, ModelConfig::tiny())
    }

    #[test]
    fn wdl_cross_feature_changes_output() {
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = Wdl::new(&mut b, &fc, &mc);
        let mut ps = b.build(&mut seeded(1));
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..4]);
        let before = eval_logits(&model, &ps, &batch);
        // Bump the cross-table row used by example 0.
        let cross_id = (batch.user_groups[0] * fc.n_item_cats as u32 + batch.item_cats[0]) as usize;
        let idx = ps.index_of("wdl/cross").unwrap();
        ps.get_mut(idx).data_mut()[cross_id] += 1.0;
        let after = eval_logits(&model, &ps, &batch);
        assert!((after[0] - before[0] - 1.0).abs() < 1e-5, "cross weight should add to logit");
    }

    #[test]
    fn autoint_attention_is_permutation_sensitive() {
        // Swapping two examples swaps their logits (row-wise attention keeps
        // examples independent).
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = AutoInt::new(&mut b, &fc, &mc);
        let ps = b.build(&mut seeded(2));
        let inter = &ds.domains[0].train[..4];
        let batch = make_batch(&ds, 0, inter);
        let mut swapped_inter = inter.to_vec();
        swapped_inter.swap(0, 3);
        let swapped = make_batch(&ds, 0, &swapped_inter);
        let l1 = eval_logits(&model, &ps, &batch);
        let l2 = eval_logits(&model, &ps, &swapped);
        assert!((l1[0] - l2[3]).abs() < 1e-5);
        assert!((l1[3] - l2[0]).abs() < 1e-5);
        assert!((l1[1] - l2[1]).abs() < 1e-5);
    }

    #[test]
    fn deepfm_reduces_to_fm_when_deep_is_zeroed() {
        let (ds, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        let model = DeepFm::new(&mut b, &fc, &mc);
        let mut ps = b.build(&mut seeded(3));
        // Zero the deep tower output layer: logits become pure FM.
        for (i, spec, _) in ps.clone().iter() {
            if spec.name.starts_with("deepfm/deep/l1") {
                ps.get_mut(i).map_inplace(|_| 0.0);
            }
        }
        let batch = make_batch(&ds, 0, &ds.domains[0].train[..5]);
        let logits = eval_logits(&model, &ps, &batch);
        assert!(logits.iter().all(|x| x.is_finite()));
        // With every embedding ~N(0, 0.01) the FM part is small but nonzero.
        assert!(logits.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn models_expose_paper_names() {
        let (_, fc, mc) = fixture();
        let mut b = ParamStoreBuilder::new();
        assert_eq!(MlpModel::new(&mut b, &fc, &mc).name(), "MLP");
        let mut b = ParamStoreBuilder::new();
        assert_eq!(NeurFm::new(&mut b, &fc, &mc).name(), "NeurFM");
        let mut b = ParamStoreBuilder::new();
        assert_eq!(Raw::new(&mut b, &fc, &mc).name(), "RAW");
    }
}
