//! # mamdr-models
//!
//! The CTR model zoo evaluated in the paper.
//!
//! Ten architectures, grouped as the paper's Table V does:
//!
//! * **Single-domain baselines** (no structural awareness of domains):
//!   [`single::MlpModel`], [`single::Wdl`], [`single::NeurFm`],
//!   [`single::AutoInt`], [`single::DeepFm`], plus [`single::Raw`] — the
//!   stand-in for the production model the industry experiments wrap.
//! * **Multi-task / multi-domain models** (shared + per-domain structure):
//!   [`multi::SharedBottom`], [`multi::Mmoe`], [`multi::Cgc`],
//!   [`multi::Ple`], [`multi::Star`].
//!
//! Every model implements [`model::CtrModel`]: it registers parameters in a
//! [`mamdr_nn::ParamStore`] at construction and replays its forward pass
//! onto a [`mamdr_autodiff::Tape`] per batch. Because the learning
//! frameworks in `mamdr-core` only touch the flat parameter vector, *any* of
//! these models can be trained by *any* framework — the paper's
//! model-agnosticism claim, exercised directly by the Table X benchmark.

pub mod config;
pub mod features;
pub mod model;
pub mod multi;
pub mod single;

pub use config::{FeatureConfig, ModelConfig, ModelKind};
pub use model::{build_model, eval_logits, loss_and_grads, predict_probs, BuiltModel, CtrModel};
