//! Cross-architecture consistency tests: prediction semantics, parameter
//! accounting and train/eval mode behavior for every model in the zoo.

use mamdr_autodiff::tape::stable_sigmoid;
use mamdr_data::{make_batch, DomainSpec, GeneratorConfig, MdrDataset};
use mamdr_models::{
    build_model, eval_logits, loss_and_grads, predict_probs, FeatureConfig, ModelConfig, ModelKind,
};
use mamdr_nn::ForwardCtx;
use mamdr_tensor::rng::seeded;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("cons", 50, 30, 77);
    cfg.dense_dim = 4;
    cfg.domains = vec![DomainSpec::new("a", 260, 0.3), DomainSpec::new("b", 200, 0.4)];
    cfg.generate()
}

#[test]
fn probs_are_sigmoid_of_logits() {
    let ds = dataset();
    let fc = FeatureConfig::from_dataset(&ds);
    let batch = make_batch(&ds, 0, &ds.domains[0].train[..10]);
    for kind in ModelKind::ALL {
        let built = build_model(kind, &fc, &ModelConfig::tiny(), 2, 4);
        let logits = eval_logits(built.model.as_ref(), &built.params, &batch);
        let probs = predict_probs(built.model.as_ref(), &built.params, &batch);
        for (l, p) in logits.iter().zip(&probs) {
            assert!((stable_sigmoid(*l) - p).abs() < 1e-6, "{}: prob/logit mismatch", kind.name());
        }
    }
}

#[test]
fn eval_is_independent_of_batch_composition() {
    // Scoring an example must not depend on which other examples share its
    // batch (no cross-example leakage) — except for STAR, whose partitioned
    // normalization intentionally uses batch statistics.
    let ds = dataset();
    let fc = FeatureConfig::from_dataset(&ds);
    let whole = make_batch(&ds, 0, &ds.domains[0].train[..8]);
    let head = make_batch(&ds, 0, &ds.domains[0].train[..4]);
    for kind in ModelKind::ALL {
        if kind == ModelKind::Star {
            continue;
        }
        let built = build_model(kind, &fc, &ModelConfig::tiny(), 2, 5);
        let full = eval_logits(built.model.as_ref(), &built.params, &whole);
        let part = eval_logits(built.model.as_ref(), &built.params, &head);
        for i in 0..4 {
            assert!(
                (full[i] - part[i]).abs() < 1e-5,
                "{}: batch composition changed example {}'s logit",
                kind.name(),
                i
            );
        }
    }
}

#[test]
fn parameter_counts_scale_with_domains() {
    // Multi-domain models must grow linearly in the domain count; the
    // single-domain models must not change at all.
    let ds = dataset();
    let fc = FeatureConfig::from_dataset(&ds);
    let mc = ModelConfig::tiny();
    for kind in ModelKind::ALL {
        let p2 = build_model(kind, &fc, &mc, 2, 1).params.n_scalars();
        let p4 = build_model(kind, &fc, &mc, 4, 1).params.n_scalars();
        if kind.is_multi_domain() {
            assert!(p4 > p2, "{}: domain params missing", kind.name());
            let p6 = build_model(kind, &fc, &mc, 6, 1).params.n_scalars();
            assert_eq!(p6 - p4, 2 * (p4 - p2) / 2, "{}: nonlinear growth", kind.name());
        } else {
            assert_eq!(p2, p4, "{}: single-domain model grew with domains", kind.name());
        }
    }
}

#[test]
fn training_mode_uses_dropout_eval_does_not() {
    let ds = dataset();
    let fc = FeatureConfig::from_dataset(&ds);
    let mut mc = ModelConfig::tiny();
    mc.dropout = 0.5;
    let batch = make_batch(&ds, 0, &ds.domains[0].train[..16]);
    let built = build_model(ModelKind::Mlp, &fc, &mc, 2, 6);
    // Two training losses with different RNG streams differ (dropout),
    let mut r1 = seeded(1);
    let mut c1 = ForwardCtx::train(&mut r1);
    let (l1, _) = loss_and_grads(built.model.as_ref(), &built.params, &batch, &mut c1);
    let mut r2 = seeded(2);
    let mut c2 = ForwardCtx::train(&mut r2);
    let (l2, _) = loss_and_grads(built.model.as_ref(), &built.params, &batch, &mut c2);
    assert_ne!(l1, l2, "dropout should randomize the training loss");
    // while eval logits ignore the RNG entirely.
    let e1 = eval_logits(built.model.as_ref(), &built.params, &batch);
    let e2 = eval_logits(built.model.as_ref(), &built.params, &batch);
    assert_eq!(e1, e2);
}

#[test]
fn gradients_are_zero_for_unused_embedding_rows() {
    let ds = dataset();
    let fc = FeatureConfig::from_dataset(&ds);
    let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 2, 7);
    let batch = make_batch(&ds, 0, &ds.domains[0].train[..6]);
    let mut rng = seeded(3);
    let mut ctx = ForwardCtx::eval(&mut rng);
    let (_, grads) = loss_and_grads(built.model.as_ref(), &built.params, &batch, &mut ctx);
    let user_table = built.params.index_of("mlp/emb_user").unwrap();
    let g = &grads[&user_table];
    let used: std::collections::HashSet<u32> = batch.users.iter().copied().collect();
    let (rows, dim) = g.matrix_dims();
    for r in 0..rows {
        let touched = used.contains(&(r as u32));
        let row_norm: f32 = g.row(r).iter().map(|x| x * x).sum();
        if !touched {
            assert_eq!(row_norm, 0.0, "row {} got gradient without being in batch", r);
        }
        let _ = dim;
    }
    // and at least the touched rows received signal
    assert!(used.iter().any(|&u| g.row(u as usize).iter().any(|&x| x != 0.0)));
}

#[test]
fn autoint_stacks_interacting_layers() {
    let ds = dataset();
    let fc = FeatureConfig::from_dataset(&ds);
    let batch = make_batch(&ds, 0, &ds.domains[0].train[..5]);
    let mut mc = ModelConfig::tiny();
    let single = build_model(ModelKind::AutoInt, &fc, &mc, 1, 3);
    mc.att_layers = 3;
    let stacked = build_model(ModelKind::AutoInt, &fc, &mc, 1, 3);
    assert!(
        stacked.params.n_scalars() > single.params.n_scalars(),
        "extra layers must add parameters"
    );
    // second layer exists and is wired into the forward pass
    assert!(stacked.params.index_of("autoint/l2/h0/wq/w").is_some());
    let logits = eval_logits(stacked.model.as_ref(), &stacked.params, &batch);
    assert_eq!(logits.len(), 5);
    assert!(logits.iter().all(|x| x.is_finite()));
}
