//! The structured event log: one JSON object per line.
//!
//! Every line carries an `"event"` kind and a monotonically increasing
//! `"seq"` so consumers can order events without trusting file append
//! order across sinks. Encoding is hand-rolled (escaped strings, finite
//! floats; NaN/Inf become `null`) — the only JSON this workspace needs.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A JSON-encodable field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite encodes as `null`).
    F64(f64),
    /// String (escaped on encode).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => push_json_str(out, s),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Renders one event as a JSON object (no trailing newline, no seq —
/// used by [`EventLog::emit`] and by registry dumps).
pub(crate) fn render_line(kind: &str, fields: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"event\":");
    push_json_str(&mut out, kind);
    for (k, v) in fields {
        out.push(',');
        push_json_str(&mut out, k);
        out.push(':');
        push_value(&mut out, v);
    }
    out.push('}');
    out
}

enum Sink {
    File(BufWriter<File>),
    Memory(Vec<String>),
}

/// An append-only JSONL event sink (file-backed or in-memory).
pub struct EventLog {
    sink: Mutex<Sink>,
    seq: AtomicU64,
}

impl EventLog {
    /// An in-memory log (tests, and binaries that dump at exit).
    pub fn in_memory() -> Self {
        EventLog { sink: Mutex::new(Sink::Memory(Vec::new())), seq: AtomicU64::new(0) }
    }

    /// A log appending to the file at `path` (created/truncated).
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        let f = File::create(path)?;
        Ok(EventLog { sink: Mutex::new(Sink::File(BufWriter::new(f))), seq: AtomicU64::new(0) })
    }

    /// Appends one event line of kind `kind` with the given fields.
    pub fn emit(&self, kind: &str, fields: &[(&str, Value)]) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = render_line(kind, fields);
        // Splice `"seq":n` right after the event kind for a stable layout.
        let insert_at = line.find(',').unwrap_or(line.len() - 1);
        line.insert_str(insert_at, &format!(",\"seq\":{seq}"));
        let mut sink = self.sink.lock().expect("event log lock");
        match &mut *sink {
            Sink::File(w) => {
                let _ = writeln!(w, "{line}");
            }
            Sink::Memory(lines) => lines.push(line),
        }
    }

    /// Appends pre-rendered JSONL content (e.g. a registry dump). Each
    /// line must already be a complete JSON object.
    pub fn append_raw(&self, jsonl: &str) {
        let mut sink = self.sink.lock().expect("event log lock");
        for line in jsonl.lines().filter(|l| !l.is_empty()) {
            match &mut *sink {
                Sink::File(w) => {
                    let _ = writeln!(w, "{line}");
                }
                Sink::Memory(lines) => lines.push(line.to_string()),
            }
        }
    }

    /// Flushes a file-backed sink (no-op for memory).
    pub fn flush(&self) {
        if let Sink::File(w) = &mut *self.sink.lock().expect("event log lock") {
            let _ = w.flush();
        }
    }

    /// The lines of an in-memory sink (empty for file-backed logs).
    pub fn lines(&self) -> Vec<String> {
        match &*self.sink.lock().expect("event log lock") {
            Sink::Memory(lines) => lines.clone(),
            Sink::File(_) => Vec::new(),
        }
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Whether no event was emitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_json_lines_with_seq() {
        let log = EventLog::in_memory();
        log.emit("epoch", &[("epoch", Value::from(0u64)), ("loss", Value::from(0.5f64))]);
        log.emit("epoch", &[("epoch", Value::from(1u64))]);
        let lines = log.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"event":"epoch","seq":0,"epoch":0,"loss":0.5}"#);
        assert_eq!(lines[1], r#"{"event":"epoch","seq":1,"epoch":1}"#);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn strings_are_escaped() {
        let log = EventLog::in_memory();
        log.emit("note", &[("msg", Value::from("a \"b\"\n\tc\\d"))]);
        assert_eq!(log.lines()[0], r#"{"event":"note","seq":0,"msg":"a \"b\"\n\tc\\d"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let log = EventLog::in_memory();
        log.emit("x", &[("bad", Value::from(f64::NAN)), ("worse", Value::from(f64::INFINITY))]);
        assert_eq!(log.lines()[0], r#"{"event":"x","seq":0,"bad":null,"worse":null}"#);
    }

    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir().join("mamdr_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let log = EventLog::to_file(&path).unwrap();
            log.emit("run", &[("id", Value::from(7u64))]);
            log.append_raw("{\"event\":\"metric\",\"name\":\"n\",\"value\":1}\n");
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"event":"run","seq":0,"id":7}"#);
        assert!(lines[1].contains("\"event\":\"metric\""));
        std::fs::remove_file(&path).unwrap();
    }
}
