//! A log-bucketed histogram with quantile estimation.
//!
//! Values land in geometrically spaced buckets (ratio [`GROWTH`]) covering
//! `[1e-9, ~1e12)`, giving ≤ ~7.5% relative quantile error over the whole
//! range at a fixed 2.6 KiB per histogram — no allocation per record, no
//! stored samples.

use std::sync::Mutex;

/// Geometric bucket growth factor.
const GROWTH: f64 = 1.15;
/// Lower edge of bucket 1 (bucket 0 catches everything at or below it).
const MIN_VALUE: f64 = 1e-9;
/// Bucket count: `log(1e21) / log(1.15)` rounded up, plus underflow and
/// overflow buckets.
const N_BUCKETS: usize = 348;

#[derive(Debug)]
struct State {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A concurrent log-bucketed histogram.
#[derive(Debug)]
pub struct Histogram {
    state: Mutex<State>,
}

/// A point-in-time copy of a histogram's aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`0.0` when empty).
    pub min: f64,
    /// Largest recorded value (`0.0` when empty).
    pub max: f64,
    /// Estimated 50th / 90th / 99th percentiles (`0.0` when empty).
    pub p50: f64,
    /// See `p50`.
    pub p90: f64,
    /// See `p50`.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= MIN_VALUE {
        return 0;
    }
    let i = ((v / MIN_VALUE).ln() / GROWTH.ln()).ceil() as usize;
    i.min(N_BUCKETS - 1)
}

/// Geometric midpoint of a bucket — the canonical estimate for values
/// that landed in it.
fn bucket_mid(i: usize) -> f64 {
    if i == 0 {
        return MIN_VALUE;
    }
    MIN_VALUE * GROWTH.powf(i as f64 - 0.5)
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            state: Mutex::new(State {
                buckets: vec![0; N_BUCKETS],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value. Negative and non-finite values are clamped into
    /// the underflow bucket (durations and losses are non-negative; a NaN
    /// must not poison the aggregates).
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
        let mut s = self.state.lock().expect("histogram lock");
        s.buckets[bucket_index(v)] += 1;
        s.count += 1;
        s.sum += v;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.state.lock().expect("histogram lock").count
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the buckets. The
    /// estimate is the geometric midpoint of the target bucket, clamped to
    /// the exact observed `[min, max]`. Returns `0.0` for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let s = self.state.lock().expect("histogram lock");
        quantile_locked(&s, q)
    }

    /// A consistent snapshot of count/sum/min/max and key percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.state.lock().expect("histogram lock");
        let empty = s.count == 0;
        HistogramSnapshot {
            count: s.count,
            sum: s.sum,
            min: if empty { 0.0 } else { s.min },
            max: if empty { 0.0 } else { s.max },
            p50: quantile_locked(&s, 0.5),
            p90: quantile_locked(&s, 0.9),
            p99: quantile_locked(&s, 0.99),
        }
    }
}

fn quantile_locked(s: &State, q: f64) -> f64 {
    if s.count == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target observation, 1-based (nearest-rank definition).
    let rank = ((q * s.count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in s.buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_mid(i).clamp(s.min, s.max);
        }
    }
    s.max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.snapshot();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn quantiles_of_uniform_grid_are_accurate() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.08, "q={q}: got {got}, want ~{expect} (rel {rel})");
        }
        assert_eq!(h.count(), 1000);
        let s = h.snapshot();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_span_many_orders_of_magnitude() {
        let h = Histogram::new();
        // 90 tiny values, 10 huge ones: p50 must be tiny, p99 huge.
        for _ in 0..90 {
            h.record(1e-6);
        }
        for _ in 0..10 {
            h.record(1e6);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 / 1e-6).ln().abs() < 0.2, "p50 {p50}");
        assert!((p99 / 1e6).ln().abs() < 0.2, "p99 {p99}");
    }

    #[test]
    fn extreme_quantiles_clamp_to_observed_range() {
        let h = Histogram::new();
        h.record(3.0);
        h.record(7.0);
        assert_eq!(h.quantile(0.0).clamp(3.0, 7.0), h.quantile(0.0));
        assert_eq!(h.quantile(1.0).clamp(3.0, 7.0), h.quantile(1.0));
    }

    #[test]
    fn pathological_inputs_do_not_poison() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-5.0);
        h.record(2.0);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!(s.sum.is_finite());
        assert_eq!(s.max, 2.0);
    }
}
