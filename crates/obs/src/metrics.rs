//! The metrics registry: named counters, gauges and histograms.
//!
//! Handles are `Arc`-backed and cheap to clone; looking a metric up twice
//! returns the same underlying cell. Counter/gauge updates are lock-free
//! atomics; only histogram records take a (per-histogram) lock.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a float that can move in either direction.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Registry of every metric a process exposes, keyed by name.
///
/// Names follow Prometheus conventions: `snake_case`, unit-suffixed
/// (`_total` for counters, `_seconds` / `_bytes` where applicable).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.counters.lock().expect("registry lock");
        m.entry(name.to_string()).or_insert_with(|| Counter(Arc::new(AtomicU64::new(0)))).clone()
    }

    /// The gauge named `name`, created on first use (initial value 0).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.gauges.lock().expect("registry lock");
        m.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().expect("registry lock");
        m.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())).clone()
    }

    /// Attaches Prometheus `# HELP` text to `name`. Idempotent; the last
    /// description wins. Metrics without one render a generated default
    /// so the exposition always carries a `# HELP` line per family.
    pub fn describe(&self, name: &str, help: &str) {
        let mut m = self.help.lock().expect("registry lock");
        m.insert(name.to_string(), help.to_string());
    }

    fn help_line(&self, name: &str, kind: &str) -> String {
        let m = self.help.lock().expect("registry lock");
        let text = match m.get(name) {
            // HELP text escaping per the exposition format: `\` and
            // newline are the only characters that need it.
            Some(h) => h.replace('\\', "\\\\").replace('\n', "\\n"),
            None => format!("mamdr {kind} {name}."),
        };
        format!("# HELP {name} {text}\n")
    }

    /// All counters as `(name, value)`, name-sorted.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        let m = self.counters.lock().expect("registry lock");
        m.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All gauges as `(name, value)`, name-sorted.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        let m = self.gauges.lock().expect("registry lock");
        m.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All histograms as `(name, snapshot)`, name-sorted.
    pub fn histogram_values(&self) -> Vec<(String, HistogramSnapshot)> {
        let m = self.histograms.lock().expect("registry lock");
        m.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Renders every metric in the Prometheus text exposition format:
    /// a `# HELP` + `# TYPE` header per family, histograms rendered
    /// summary-style (`quantile`-labelled sample lines plus `_sum` /
    /// `_count`), so the output is scrapeable as-is.
    ///
    /// A labelled series like `ps_kv_entries{shard="2"}` belongs to the
    /// `ps_kv_entries` family: the header is emitted once per family, not
    /// per series. Name-sorted iteration keeps a family's members adjacent
    /// (`{` sorts after every identifier character), so one pass with a
    /// last-family cursor suffices.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let header = |out: &mut String, last: &mut String, name: &str, kind: &str| {
            let family = name.split('{').next().unwrap_or(name);
            if family != last {
                out.push_str(&self.help_line(family, kind));
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last.clear();
                last.push_str(family);
            }
        };
        for (name, v) in self.counter_values() {
            header(&mut out, &mut last_family, &name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        last_family.clear();
        for (name, v) in self.gauge_values() {
            header(&mut out, &mut last_family, &name, "gauge");
            out.push_str(&format!("{name} {}\n", fmt_f64(v)));
        }
        for (name, s) in self.histogram_values() {
            out.push_str(&self.help_line(&name, "summary"));
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [(0.5, s.p50), (0.9, s.p90), (0.99, s.p99)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", fmt_f64(v)));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", fmt_f64(s.sum), s.count));
        }
        out
    }

    /// Dumps every metric as one JSON line each (kind-tagged), suitable
    /// for appending to an event log file.
    pub fn dump_jsonl(&self) -> String {
        use crate::events::Value;
        let mut out = String::new();
        for (name, v) in self.counter_values() {
            out.push_str(&crate::events::render_line(
                "metric",
                &[
                    ("kind", Value::from("counter")),
                    ("name", Value::from(name.as_str())),
                    ("value", Value::from(v)),
                ],
            ));
            out.push('\n');
        }
        for (name, v) in self.gauge_values() {
            out.push_str(&crate::events::render_line(
                "metric",
                &[
                    ("kind", Value::from("gauge")),
                    ("name", Value::from(name.as_str())),
                    ("value", Value::from(v)),
                ],
            ));
            out.push('\n');
        }
        for (name, s) in self.histogram_values() {
            out.push_str(&crate::events::render_line(
                "metric",
                &[
                    ("kind", Value::from("histogram")),
                    ("name", Value::from(name.as_str())),
                    ("count", Value::from(s.count)),
                    ("sum", Value::from(s.sum)),
                    ("min", Value::from(s.min)),
                    ("max", Value::from(s.max)),
                    ("p50", Value::from(s.p50)),
                    ("p90", Value::from(s.p90)),
                    ("p99", Value::from(s.p99)),
                ],
            ));
            out.push('\n');
        }
        out
    }
}

pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("requests_total").get(), 5);
        assert_eq!(reg.counter_values(), vec![("requests_total".to_string(), 5)]);
    }

    #[test]
    fn gauges_hold_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("cache_hit_ratio");
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert_eq!(reg.gauge("cache_hit_ratio").get(), 0.75);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn histograms_register_once() {
        let reg = MetricsRegistry::new();
        reg.histogram("epoch_seconds").record(1.0);
        reg.histogram("epoch_seconds").record(3.0);
        let vals = reg.histogram_values();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].1.count, 2);
        assert_eq!(vals[0].1.sum, 4.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = reg.counter("n");
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("n").get(), 4000);
    }

    #[test]
    fn prometheus_rendering_has_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(2);
        reg.gauge("b").set(1.5);
        reg.histogram("c_seconds").record(0.25);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 2\n"), "{text}");
        assert!(text.contains("# TYPE b gauge\nb 1.5\n"), "{text}");
        assert!(text.contains("# TYPE c_seconds summary\n"), "{text}");
        assert!(text.contains("c_seconds_count 1\n"), "{text}");
        assert!(text.contains("quantile=\"0.5\""), "{text}");
    }

    #[test]
    fn prometheus_rendering_emits_help_per_family() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(2);
        reg.describe("a_total", "Things that\nhappened.");
        reg.gauge("b").set(1.0);
        reg.histogram("c_seconds").record(0.25);
        let text = reg.render_prometheus();
        // Described metric: escaped text; undescribed: generated default.
        assert!(text.contains("# HELP a_total Things that\\nhappened.\n"), "{text}");
        assert!(text.contains("# HELP b mamdr gauge b.\n"), "{text}");
        assert!(
            text.contains("# HELP c_seconds mamdr summary c_seconds.\n# TYPE c_seconds summary\n"),
            "{text}"
        );
        // Every family has exactly one HELP and one TYPE line.
        let helps = text.matches("# HELP ").count();
        let types = text.matches("# TYPE ").count();
        assert_eq!(helps, 3, "{text}");
        assert_eq!(types, 3, "{text}");
    }

    #[test]
    fn prometheus_rendering_groups_labelled_series_into_families() {
        let reg = MetricsRegistry::new();
        reg.gauge("ps_kv_entries").set(10.0);
        reg.gauge("ps_kv_entries{shard=\"0\"}").set(4.0);
        reg.gauge("ps_kv_entries{shard=\"1\"}").set(6.0);
        reg.describe("ps_kv_entries", "Rows resident in the KV store.");
        reg.counter("rpc_frames_total{shard=\"0\"}").add(7);
        let text = reg.render_prometheus();
        // One header pair for the three-gauge family, above its samples.
        assert_eq!(text.matches("# HELP ps_kv_entries ").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE ps_kv_entries gauge\n").count(), 1, "{text}");
        assert!(text.contains("# HELP ps_kv_entries Rows resident in the KV store.\n"), "{text}");
        assert!(text.contains("ps_kv_entries 10\n"), "{text}");
        assert!(text.contains("ps_kv_entries{shard=\"0\"} 4\n"), "{text}");
        assert!(text.contains("ps_kv_entries{shard=\"1\"} 6\n"), "{text}");
        let family_at = text.find("# TYPE ps_kv_entries gauge").unwrap();
        for sample in ["ps_kv_entries 10", "ps_kv_entries{shard=\"0\"}"] {
            assert!(text.find(sample).unwrap() > family_at, "{text}");
        }
        // A family whose only series is labelled still gets headers named
        // after the family, not the series.
        assert!(text.contains("# TYPE rpc_frames_total counter\n"), "{text}");
        assert!(text.contains("rpc_frames_total{shard=\"0\"} 7\n"), "{text}");
        assert!(!text.contains("# TYPE rpc_frames_total{"), "{text}");
    }

    #[test]
    fn jsonl_dump_is_one_object_per_line() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").inc();
        reg.gauge("b").set(2.0);
        reg.histogram("c").record(1.0);
        let dump = reg.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"event\":\"metric\""), "{line}");
        }
    }
}
