//! Distributed tracing: monotonic-clock spans with parent ids, a
//! thread-safe bounded span sink, exact per-phase wall-clock aggregates,
//! and Chrome `trace_event` export.
//!
//! The tracer obeys the same contract as the rest of this crate:
//!
//! 1. **Free when absent.** Every instrumented call site holds an
//!    `Option<Arc<Tracer>>` and pays one branch when it is `None`.
//! 2. **Never perturbs training.** Spans only *read* monotonic clocks;
//!    no span id, timestamp or attribute ever feeds back into training
//!    math, RNG streams, or wire-visible control flow (the trace frame
//!    extension changes payload bytes, never frame counts or op-codes).
//! 3. **Zero heavy dependencies.** The Chrome JSON encoder and the span
//!    ring are small enough to own.
//!
//! Two sinks, two guarantees:
//!
//! * The **span ring** keeps the most recent [`Tracer::capacity`] finished
//!   spans for export ([`Tracer::to_chrome_trace`]) and live inspection
//!   (the introspection server's `/spans`). When full it drops the oldest
//!   and counts the loss ([`Tracer::dropped`]) — tracing never grows
//!   without bound.
//! * The **phase aggregates** fold every finished span (and every
//!   [`Tracer::record_phase`] call) into an exact `(count, total seconds)`
//!   per span name, unaffected by ring eviction. Wall-clock attribution
//!   tables are built from these, so they stay exact on arbitrarily long
//!   runs.
//!
//! Timestamps are monotonic ([`std::time::Instant`]) relative to the
//! tracer's construction; a wall-clock base is captured once at
//! construction and only applied post-hoc at export time. Training and
//! serving code therefore never consults the system clock mid-run —
//! determinism contracts survive tracing.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

/// The identity a span propagates (e.g. across the wire): which trace it
/// belongs to and which span is the parent of work done on its behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The trace every causally related span shares.
    pub trace_id: u64,
    /// The span id children parent to.
    pub span_id: u64,
}

/// One finished span, as stored in the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (also the phase-aggregate key).
    pub name: &'static str,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (`0` for a root span).
    pub parent_id: u64,
    /// Start, in nanoseconds since the tracer's epoch (monotonic).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small stable per-thread label (first-use order, not an OS id).
    pub thread: u64,
    /// Numeric attributes (flags encode as 0/1).
    pub attrs: Vec<(&'static str, u64)>,
}

/// One phase's exact aggregate: how many spans (or
/// [`Tracer::record_phase`] samples) landed in it and their summed
/// wall-clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// Spans / samples folded in.
    pub count: u64,
    /// Summed wall-clock seconds.
    pub total_secs: f64,
}

#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_LABEL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

fn thread_label() -> u64 {
    THREAD_LABEL.with(|l| *l)
}

/// The span sink: allocates ids, stores finished spans in a bounded ring,
/// and folds every span into exact per-phase aggregates.
pub struct Tracer {
    epoch: Instant,
    /// Wall-clock at construction, microseconds since the Unix epoch —
    /// applied post-hoc at export so runs never read the system clock
    /// mid-flight.
    epoch_unix_micros: u64,
    next_id: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
    phases: Mutex<BTreeMap<&'static str, PhaseAgg>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .field("spans", &self.span_count())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

/// Default ring capacity: enough for every span of a `--quick` bench run
/// with headroom, bounded at a few MiB of records.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

impl Tracer {
    /// A tracer with the default ring capacity.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A tracer whose ring keeps the most recent `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        let epoch_unix_micros = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Tracer {
            epoch: Instant::now(),
            epoch_unix_micros,
            next_id: AtomicU64::new(1),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
            phases: Mutex::new(BTreeMap::new()),
        }
    }

    /// Allocates a fresh id (used for both trace and span ids). Ids are
    /// unique per tracer, never zero.
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Starts a root span of a fresh trace. The span is recorded when the
    /// guard drops (or [`SpanGuard::finish`] is called).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let trace_id = self.alloc_id();
        self.start_span(name, trace_id, 0)
    }

    /// Starts a span inside an existing trace, parented to `parent`.
    pub fn child(&self, name: &'static str, parent: SpanContext) -> SpanGuard<'_> {
        self.start_span(name, parent.trace_id, parent.span_id)
    }

    fn start_span(&self, name: &'static str, trace_id: u64, parent_id: u64) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name,
            trace_id,
            span_id: self.alloc_id(),
            parent_id,
            start: Instant::now(),
            attrs: Vec::new(),
            finished: false,
        }
    }

    /// Nanoseconds of `t` since the tracer's epoch (0 when `t` predates
    /// it).
    fn rel_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Records a span with explicit endpoints — for lifecycles whose
    /// timestamps were captured by other threads (e.g. a serve request's
    /// queue wait, stamped at admission and read at scoring).
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_at(
        &self,
        name: &'static str,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        start: Instant,
        end: Instant,
        attrs: Vec<(&'static str, u64)>,
    ) {
        let start_ns = self.rel_ns(start);
        let dur_ns = self.rel_ns(end).saturating_sub(start_ns);
        self.push(SpanRecord {
            name,
            trace_id,
            span_id,
            parent_id,
            start_ns,
            dur_ns,
            thread: thread_label(),
            attrs,
        });
    }

    /// Folds a duration into a phase aggregate without materializing a
    /// span — the hot-path variant for per-frame costs (wire encode /
    /// decode) where a ring record per sample would be waste.
    pub fn record_phase(&self, name: &'static str, dur: std::time::Duration) {
        let mut phases = self.phases.lock().expect("tracer phase lock");
        let agg = phases.entry(name).or_default();
        agg.count += 1;
        agg.total_ns += dur.as_nanos() as u64;
    }

    fn push(&self, record: SpanRecord) {
        {
            let mut phases = self.phases.lock().expect("tracer phase lock");
            let agg = phases.entry(record.name).or_default();
            agg.count += 1;
            agg.total_ns += record.dur_ns;
        }
        let mut ring = self.ring.lock().expect("tracer ring lock");
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Number of spans currently held in the ring.
    pub fn span_count(&self) -> usize {
        self.ring.lock().expect("tracer ring lock").len()
    }

    /// Spans evicted from the ring so far (aggregates still include
    /// them).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent `limit` finished spans, oldest first.
    pub fn recent_spans(&self, limit: usize) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("tracer ring lock");
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// The exact per-phase aggregates, name-sorted. Unaffected by ring
    /// eviction.
    pub fn phase_summary(&self) -> Vec<(String, PhaseSummary)> {
        let phases = self.phases.lock().expect("tracer phase lock");
        phases
            .iter()
            .map(|(name, agg)| {
                (
                    name.to_string(),
                    PhaseSummary { count: agg.count, total_secs: agg.total_ns as f64 / 1e9 },
                )
            })
            .collect()
    }

    /// One phase's aggregate (zero when nothing landed in it).
    pub fn phase(&self, name: &str) -> PhaseSummary {
        let phases = self.phases.lock().expect("tracer phase lock");
        phases
            .get(name)
            .map(|agg| PhaseSummary { count: agg.count, total_secs: agg.total_ns as f64 / 1e9 })
            .unwrap_or(PhaseSummary { count: 0, total_secs: 0.0 })
    }

    /// Renders the ring as Chrome `trace_event` JSON — one complete (`X`)
    /// event per span — loadable in `chrome://tracing` or Perfetto.
    /// Timestamps are exported as wall-clock microseconds by adding the
    /// construction-time base to each span's monotonic offset.
    pub fn to_chrome_trace(&self) -> String {
        let ring = self.ring.lock().expect("tracer ring lock");
        let mut out = String::with_capacity(128 + ring.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts = self.epoch_unix_micros + s.start_ns / 1_000;
            let dur = (s.dur_ns / 1_000).max(1);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\
                 \"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{}",
                s.name, s.thread, s.trace_id, s.span_id, s.parent_id
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, ",\"{k}\":{v}");
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the most recent `limit` spans as a standalone JSON object
    /// (the introspection server's `/spans` body).
    pub fn spans_json(&self, limit: usize) -> String {
        let spans = self.recent_spans(limit);
        let mut out = String::with_capacity(64 + spans.len() * 140);
        let _ = write!(out, "{{\"dropped\":{},\"spans\":[", self.dropped());
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"trace_id\":{},\"span_id\":{},\"parent_id\":{},\
                 \"start_ns\":{},\"dur_ns\":{},\"thread\":{}",
                s.name, s.trace_id, s.span_id, s.parent_id, s.start_ns, s.dur_ns, s.thread
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, ",\"{k}\":{v}");
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A live span; records itself into the tracer when dropped (or finished
/// explicitly). Borrows the tracer, so guards never outlive their sink.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start: Instant,
    attrs: Vec<(&'static str, u64)>,
    finished: bool,
}

impl SpanGuard<'_> {
    /// The context children (local or cross-wire) parent to.
    pub fn ctx(&self) -> SpanContext {
        SpanContext { trace_id: self.trace_id, span_id: self.span_id }
    }

    /// Attaches a numeric attribute (booleans encode as 0/1).
    pub fn attr(&mut self, key: &'static str, value: u64) {
        self.attrs.push((key, value));
    }

    /// Seconds elapsed since the span started.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let start_ns = self.tracer.rel_ns(self.start);
        self.tracer.push(SpanRecord {
            name: self.name,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            start_ns,
            dur_ns: self.start.elapsed().as_nanos() as u64,
            thread: thread_label(),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// Convenience: opens a span on `tracer` when one is attached; `None`
/// otherwise. Keeps instrumented call sites to a single expression.
pub fn maybe_span<'a>(
    tracer: &'a Option<Arc<Tracer>>,
    name: &'static str,
) -> Option<SpanGuard<'a>> {
    tracer.as_ref().map(|t| t.span(name))
}

/// Like [`maybe_span`], parented under `parent` when both are present.
pub fn maybe_child<'a>(
    tracer: &'a Option<Arc<Tracer>>,
    name: &'static str,
    parent: Option<SpanContext>,
) -> Option<SpanGuard<'a>> {
    tracer.as_ref().map(|t| match parent {
        Some(p) => t.child(name, p),
        None => t.span(name),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_record_on_drop_with_parenting() {
        let tracer = Tracer::new();
        let root_ctx = {
            let mut root = tracer.span("round");
            root.attr("epoch", 3);
            let ctx = root.ctx();
            {
                let child = tracer.child("pull", ctx);
                assert_eq!(child.ctx().trace_id, ctx.trace_id);
            }
            ctx
        };
        let spans = tracer.recent_spans(16);
        assert_eq!(spans.len(), 2);
        // Children finish (and record) before their parents.
        assert_eq!(spans[0].name, "pull");
        assert_eq!(spans[0].parent_id, root_ctx.span_id);
        assert_eq!(spans[0].trace_id, root_ctx.trace_id);
        assert_eq!(spans[1].name, "round");
        assert_eq!(spans[1].parent_id, 0);
        assert_eq!(spans[1].attrs, vec![("epoch", 3)]);
    }

    #[test]
    fn phase_aggregates_survive_ring_eviction() {
        let tracer = Tracer::with_capacity(4);
        for _ in 0..10 {
            tracer.span("tiny").finish();
        }
        assert_eq!(tracer.span_count(), 4);
        assert_eq!(tracer.dropped(), 6);
        assert_eq!(tracer.phase("tiny").count, 10);
    }

    #[test]
    fn record_phase_needs_no_span() {
        let tracer = Tracer::new();
        tracer.record_phase("wire.encode", Duration::from_micros(5));
        tracer.record_phase("wire.encode", Duration::from_micros(7));
        let p = tracer.phase("wire.encode");
        assert_eq!(p.count, 2);
        assert!((p.total_secs - 12e-6).abs() < 1e-9, "{}", p.total_secs);
        assert_eq!(tracer.span_count(), 0);
    }

    #[test]
    fn explicit_timestamps_round_trip() {
        let tracer = Tracer::new();
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let end = Instant::now();
        tracer.record_span_at("queue", 9, 10, 3, start, end, vec![("domain", 1)]);
        let spans = tracer.recent_spans(1);
        assert_eq!(spans[0].trace_id, 9);
        assert_eq!(spans[0].span_id, 10);
        assert_eq!(spans[0].parent_id, 3);
        assert!(spans[0].dur_ns >= 1_000_000, "{}", spans[0].dur_ns);
    }

    #[test]
    fn chrome_export_is_wellformed_json_with_all_spans() {
        let tracer = Tracer::new();
        {
            let mut s = tracer.span("a");
            s.attr("k", 7);
        }
        tracer.span("b").finish();
        let json = tracer.to_chrome_trace();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2, "{json}");
        assert!(json.contains("\"name\":\"a\""), "{json}");
        assert!(json.contains("\"k\":7"), "{json}");
        // Balanced braces/brackets — cheap structural sanity for a format
        // chrome://tracing must parse.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close, "{json}");
    }

    #[test]
    fn spans_json_reports_drops() {
        let tracer = Tracer::with_capacity(2);
        for _ in 0..5 {
            tracer.span("x").finish();
        }
        let body = tracer.spans_json(10);
        assert!(body.contains("\"dropped\":3"), "{body}");
        assert_eq!(body.matches("\"name\":\"x\"").count(), 2, "{body}");
    }

    #[test]
    fn tracer_is_thread_safe() {
        let tracer = Arc::new(Tracer::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = Arc::clone(&tracer);
                s.spawn(move || {
                    for _ in 0..100 {
                        let mut span = t.span("work");
                        span.attr("n", 1);
                    }
                });
            }
        });
        assert_eq!(tracer.phase("work").count, 400);
        // Distinct threads got distinct labels.
        let threads: std::collections::HashSet<u64> =
            tracer.recent_spans(usize::MAX).iter().map(|s| s.thread).collect();
        assert!(threads.len() >= 2, "expected multiple thread labels, got {threads:?}");
    }

    #[test]
    fn maybe_helpers_are_free_when_absent() {
        let none: Option<Arc<Tracer>> = None;
        assert!(maybe_span(&none, "x").is_none());
        assert!(maybe_child(&none, "x", None).is_none());
        let some = Some(Arc::new(Tracer::new()));
        let parent = some.as_ref().unwrap().span("p");
        let child = maybe_child(&some, "c", Some(parent.ctx()));
        assert!(child.is_some());
    }
}
