//! The [`TrainObserver`] callback trait and its stock implementations.
//!
//! Training code (the `mamdr-core` frameworks and the `mamdr-ps`
//! trainer) invokes these hooks at run and epoch boundaries. Every hook
//! has a no-op default, and all data handed to an observer is either a
//! byproduct of work training did anyway or derived from a dedicated
//! probe RNG stream — attaching an observer never changes results.

use crate::events::{EventLog, Value};
use crate::metrics::MetricsRegistry;
use std::sync::{Arc, Mutex};

/// Static facts about a training run, reported once at start.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainMeta {
    /// Framework name (e.g. `"mamdr"`, `"alternate"`).
    pub framework: String,
    /// Number of domains in the dataset.
    pub n_domains: usize,
    /// Configured epoch count.
    pub epochs: usize,
    /// RNG seed of the run.
    pub seed: u64,
}

/// Gradient-conflict aggregates measured by a probe at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictSummary {
    /// Fraction of domain pairs with negative gradient inner product.
    pub rate: f64,
    /// Mean pairwise cosine similarity.
    pub mean_cosine: f64,
    /// Mean pairwise inner product.
    pub mean_inner_product: f64,
}

/// What one epoch produced, reported at its end.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochEvent {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over every gradient batch of the epoch.
    pub mean_loss: f64,
    /// Per-domain `(domain_id, mean_loss)`, ascending by domain id.
    pub domain_losses: Vec<(usize, f64)>,
    /// Root-mean gradient norm over the epoch's batches, when the
    /// training path computed gradients through the observed env.
    pub grad_norm: Option<f64>,
    /// Conflict probe results (only when [`TrainObserver::wants_conflict`]
    /// asked for them this epoch).
    pub conflict: Option<ConflictSummary>,
}

/// Callbacks invoked by the training stack. All defaults are no-ops.
pub trait TrainObserver: Send {
    /// Called once before the first epoch.
    fn on_train_start(&mut self, _meta: &TrainMeta) {}

    /// Called after each epoch with that epoch's aggregates.
    fn on_epoch_end(&mut self, _event: &EpochEvent) {}

    /// Called once after training with the run's wall-clock seconds.
    fn on_train_end(&mut self, _wall_secs: f64) {}

    /// Whether the framework should run the (training-neutral) gradient
    /// conflict probe at the end of `epoch`. Probes cost extra gradient
    /// evaluations, so they are opt-in per epoch.
    fn wants_conflict(&self, _epoch: usize) -> bool {
        false
    }
}

/// An observer that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl TrainObserver for NoopObserver {}

/// Records everything it is told, for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    meta: Option<TrainMeta>,
    events: Vec<EpochEvent>,
    wall_secs: Option<f64>,
    conflict_every: usize,
}

impl RecordingObserver {
    /// An observer that records epochs but requests no conflict probes.
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// Requests a conflict probe every `every` epochs (0 = never).
    pub fn with_conflict_every(mut self, every: usize) -> Self {
        self.conflict_every = every;
        self
    }

    /// Run metadata, if training started.
    pub fn meta(&self) -> Option<&TrainMeta> {
        self.meta.as_ref()
    }

    /// Every epoch event seen so far, in order.
    pub fn events(&self) -> &[EpochEvent] {
        &self.events
    }

    /// Wall-clock seconds, if training finished.
    pub fn wall_secs(&self) -> Option<f64> {
        self.wall_secs
    }
}

impl TrainObserver for RecordingObserver {
    fn on_train_start(&mut self, meta: &TrainMeta) {
        self.meta = Some(meta.clone());
    }

    fn on_epoch_end(&mut self, event: &EpochEvent) {
        self.events.push(event.clone());
    }

    fn on_train_end(&mut self, wall_secs: f64) {
        self.wall_secs = Some(wall_secs);
    }

    fn wants_conflict(&self, epoch: usize) -> bool {
        self.conflict_every != 0 && epoch.is_multiple_of(self.conflict_every)
    }
}

/// Streams epoch events into an [`EventLog`] and keeps a
/// [`MetricsRegistry`] current (loss gauges, epoch histograms, epoch
/// counters). This is what the bench binaries attach for `--metrics-out`.
pub struct TelemetryObserver {
    registry: Arc<MetricsRegistry>,
    log: Arc<EventLog>,
    framework: String,
    conflict_every: usize,
    epoch_start: Option<std::time::Instant>,
}

impl TelemetryObserver {
    /// An observer feeding `registry` and `log`.
    pub fn new(registry: Arc<MetricsRegistry>, log: Arc<EventLog>) -> Self {
        TelemetryObserver {
            registry,
            log,
            framework: String::new(),
            conflict_every: 0,
            epoch_start: None,
        }
    }

    /// Requests a conflict probe every `every` epochs (0 = never).
    pub fn with_conflict_every(mut self, every: usize) -> Self {
        self.conflict_every = every;
        self
    }
}

impl TrainObserver for TelemetryObserver {
    fn on_train_start(&mut self, meta: &TrainMeta) {
        self.framework = meta.framework.clone();
        self.epoch_start = Some(std::time::Instant::now());
        self.log.emit(
            "train_start",
            &[
                ("framework", Value::from(meta.framework.as_str())),
                ("n_domains", Value::from(meta.n_domains)),
                ("epochs", Value::from(meta.epochs)),
                ("seed", Value::from(meta.seed)),
            ],
        );
    }

    fn on_epoch_end(&mut self, event: &EpochEvent) {
        let epoch_secs =
            self.epoch_start.replace(std::time::Instant::now()).map(|t| t.elapsed().as_secs_f64());
        let mut fields = vec![
            ("framework", Value::from(self.framework.as_str())),
            ("epoch", Value::from(event.epoch)),
            ("train_loss", Value::from(event.mean_loss)),
        ];
        if let Some(g) = event.grad_norm {
            fields.push(("grad_norm", Value::from(g)));
        }
        if let Some(s) = epoch_secs {
            fields.push(("epoch_seconds", Value::from(s)));
        }
        if let Some(c) = &event.conflict {
            fields.push(("conflict_rate", Value::from(c.rate)));
            fields.push(("conflict_mean_cosine", Value::from(c.mean_cosine)));
            fields.push(("conflict_mean_ip", Value::from(c.mean_inner_product)));
        }
        self.log.emit("epoch", &fields);
        for &(domain, loss) in &event.domain_losses {
            self.log.emit(
                "domain_loss",
                &[
                    ("epoch", Value::from(event.epoch)),
                    ("domain", Value::from(domain)),
                    ("train_loss", Value::from(loss)),
                ],
            );
        }

        self.registry.counter("train_epochs_total").inc();
        self.registry.gauge("train_loss").set(event.mean_loss);
        self.registry.histogram("train_loss_per_epoch").record(event.mean_loss);
        if let Some(g) = event.grad_norm {
            self.registry.gauge("train_grad_norm").set(g);
        }
        if let Some(s) = epoch_secs {
            self.registry.histogram("train_epoch_seconds").record(s);
        }
        if let Some(c) = &event.conflict {
            self.registry.gauge("train_conflict_rate").set(c.rate);
        }
    }

    fn on_train_end(&mut self, wall_secs: f64) {
        self.registry.histogram("train_run_seconds").record(wall_secs);
        self.log.emit(
            "train_end",
            &[
                ("framework", Value::from(self.framework.as_str())),
                ("wall_secs", Value::from(wall_secs)),
            ],
        );
    }

    fn wants_conflict(&self, epoch: usize) -> bool {
        self.conflict_every != 0 && epoch.is_multiple_of(self.conflict_every)
    }
}

/// Lets callers keep a handle on an observer they hand to training:
/// wrap it in `Arc<Mutex<_>>`, pass a clone in, and inspect it after.
impl<T: TrainObserver> TrainObserver for Arc<Mutex<T>> {
    fn on_train_start(&mut self, meta: &TrainMeta) {
        self.lock().expect("observer lock").on_train_start(meta);
    }

    fn on_epoch_end(&mut self, event: &EpochEvent) {
        self.lock().expect("observer lock").on_epoch_end(event);
    }

    fn on_train_end(&mut self, wall_secs: f64) {
        self.lock().expect("observer lock").on_train_end(wall_secs);
    }

    fn wants_conflict(&self, epoch: usize) -> bool {
        self.lock().expect("observer lock").wants_conflict(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event(epoch: usize) -> EpochEvent {
        EpochEvent {
            epoch,
            mean_loss: 0.7 - epoch as f64 * 0.1,
            domain_losses: vec![(0, 0.6), (1, 0.8)],
            grad_norm: Some(1.25),
            conflict: None,
        }
    }

    #[test]
    fn recording_observer_captures_the_run() {
        let mut obs = RecordingObserver::new();
        obs.on_train_start(&TrainMeta {
            framework: "mamdr".into(),
            n_domains: 2,
            epochs: 2,
            seed: 7,
        });
        obs.on_epoch_end(&sample_event(0));
        obs.on_epoch_end(&sample_event(1));
        obs.on_train_end(1.5);
        assert_eq!(obs.meta().unwrap().framework, "mamdr");
        assert_eq!(obs.events().len(), 2);
        assert_eq!(obs.events()[1].epoch, 1);
        assert_eq!(obs.wall_secs(), Some(1.5));
        assert!(!obs.wants_conflict(0));
    }

    #[test]
    fn conflict_cadence_is_modular() {
        let obs = RecordingObserver::new().with_conflict_every(2);
        assert!(obs.wants_conflict(0));
        assert!(!obs.wants_conflict(1));
        assert!(obs.wants_conflict(2));
    }

    #[test]
    fn telemetry_observer_feeds_log_and_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let log = Arc::new(EventLog::in_memory());
        let mut obs = TelemetryObserver::new(reg.clone(), log.clone());
        obs.on_train_start(&TrainMeta {
            framework: "alternate".into(),
            n_domains: 2,
            epochs: 1,
            seed: 3,
        });
        obs.on_epoch_end(&sample_event(0));
        obs.on_train_end(0.25);

        let lines = log.lines();
        assert!(lines[0].contains("\"event\":\"train_start\""), "{}", lines[0]);
        assert!(lines[1].contains("\"event\":\"epoch\""), "{}", lines[1]);
        assert!(lines[1].contains("\"train_loss\":0.7"), "{}", lines[1]);
        let domain_lines: Vec<_> =
            lines.iter().filter(|l| l.contains("\"event\":\"domain_loss\"")).collect();
        assert_eq!(domain_lines.len(), 2);
        assert!(lines.last().unwrap().contains("\"event\":\"train_end\""));

        assert_eq!(reg.counter("train_epochs_total").get(), 1);
        assert_eq!(reg.gauge("train_loss").get(), 0.7);
        assert_eq!(reg.histogram("train_run_seconds").count(), 1);
    }

    #[test]
    fn arc_mutex_wrapper_forwards_and_shares() {
        let inner = Arc::new(Mutex::new(RecordingObserver::new()));
        let mut handle: Arc<Mutex<RecordingObserver>> = inner.clone();
        handle.on_epoch_end(&sample_event(0));
        handle.on_train_end(2.0);
        let obs = inner.lock().unwrap();
        assert_eq!(obs.events().len(), 1);
        assert_eq!(obs.wall_secs(), Some(2.0));
    }
}
