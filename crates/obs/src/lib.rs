//! Unified training telemetry for the MAMDR workspace.
//!
//! Everything the training stack reports about itself flows through this
//! crate: counters, gauges and quantile histograms in a
//! [`MetricsRegistry`]; wall-clock profiling via [`ScopedTimer`]; a
//! structured JSONL [`EventLog`]; the [`TrainObserver`] callback
//! trait that `mamdr-core` frameworks and the `mamdr-ps` trainer invoke
//! at epoch/round boundaries; distributed tracing via [`Tracer`] spans
//! (Chrome `trace_event` export, exact per-phase wall-clock aggregates);
//! and the opt-in [`IntrospectServer`] exposing `/metrics`, `/healthz`
//! and `/spans` to a live process.
//!
//! Design constraints, in order:
//!
//! 1. **Free when absent.** Training code checks a single `Option`
//!    before doing any telemetry work; with no observer attached, the
//!    hot path pays one branch per gradient call.
//! 2. **Never perturbs training.** Observers receive data that training
//!    computed anyway (or that is derived from a dedicated probe RNG
//!    stream); attaching one must leave results bit-identical.
//! 3. **Zero heavy dependencies.** JSON encoding, quantile estimation
//!    and the Prometheus text format are small enough to own.

mod events;
mod health;
mod histogram;
mod introspect;
mod metrics;
mod observer;
mod timer;
mod trace;

pub use events::{EventLog, Value};
pub use health::{PublishEvent, PublishState};
pub use histogram::{Histogram, HistogramSnapshot};
pub use introspect::IntrospectServer;
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use observer::{
    ConflictSummary, EpochEvent, NoopObserver, RecordingObserver, TelemetryObserver, TrainMeta,
    TrainObserver,
};
pub use timer::ScopedTimer;
pub use trace::{
    maybe_child, maybe_span, PhaseSummary, SpanContext, SpanGuard, SpanRecord, Tracer,
    DEFAULT_RING_CAPACITY,
};
