//! Shared health state of the continual-publication gate.
//!
//! The serve-side publish gate records every verdict here; the
//! [`IntrospectServer`](crate::IntrospectServer) reads it to answer
//! `/healthz` and `/publish`. Keeping the state in this crate (plain
//! atomics plus a small mutexed history ring) lets the observability
//! layer report on publication without depending on the serving crate —
//! the same inversion as metrics: producers push, `obs` renders.
//!
//! Health semantics: the serving tier is **degraded**, not down, when the
//! most recent candidate was rejected — traffic is still answered, from
//! the last-good snapshot — so `/healthz` stays HTTP 200 and reports
//! `degraded` with the last-good version and the consecutive-failure
//! count in the body. A subsequently accepted candidate clears the state
//! back to `ok`.

use crate::events::push_json_str;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Most recent gate verdicts kept for `/publish`.
const HISTORY_CAP: usize = 64;

/// One gate verdict: a candidate snapshot was offered and either cut over
/// or rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishEvent {
    /// Training round that produced the candidate.
    pub round: u64,
    /// Candidate snapshot version (0 when the file was too corrupt to
    /// even read a version out of).
    pub version: u64,
    /// Whether the candidate reached traffic.
    pub accepted: bool,
    /// Typed rejection reason (`digest`, `version`, `structure`,
    /// `nonfinite`, `divergence`, `canary`); empty for accepts.
    pub reason: String,
    /// Human-readable detail of the verdict.
    pub detail: String,
}

/// Live gate state: last-good version, consecutive rejections, verdict
/// history. All methods are lock-cheap and callable from any thread.
#[derive(Debug, Default)]
pub struct PublishState {
    last_good: AtomicU64,
    consecutive_rejects: AtomicU64,
    history: Mutex<Vec<PublishEvent>>,
}

impl PublishState {
    /// Fresh state serving `initial_version` as last-good.
    pub fn new(initial_version: u64) -> Self {
        PublishState {
            last_good: AtomicU64::new(initial_version),
            consecutive_rejects: AtomicU64::new(0),
            history: Mutex::new(Vec::new()),
        }
    }

    /// Records a cutover: `version` is the new last-good and the
    /// consecutive-failure count resets.
    pub fn record_accept(&self, round: u64, version: u64, detail: impl Into<String>) {
        self.last_good.store(version, Ordering::Relaxed);
        self.consecutive_rejects.store(0, Ordering::Relaxed);
        self.push(PublishEvent {
            round,
            version,
            accepted: true,
            reason: String::new(),
            detail: detail.into(),
        });
    }

    /// Records a rejection (the pool stays on last-good).
    pub fn record_reject(
        &self,
        round: u64,
        version: u64,
        reason: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.consecutive_rejects.fetch_add(1, Ordering::Relaxed);
        self.push(PublishEvent {
            round,
            version,
            accepted: false,
            reason: reason.into(),
            detail: detail.into(),
        });
    }

    fn push(&self, event: PublishEvent) {
        let mut h = self.history.lock().expect("publish history lock");
        if h.len() == HISTORY_CAP {
            h.remove(0);
        }
        h.push(event);
    }

    /// The version traffic is currently answered from.
    pub fn last_good_version(&self) -> u64 {
        self.last_good.load(Ordering::Relaxed)
    }

    /// Gate failures since the last accepted candidate.
    pub fn consecutive_failures(&self) -> u64 {
        self.consecutive_rejects.load(Ordering::Relaxed)
    }

    /// The `/healthz` body: `ok` while the most recent candidate was
    /// accepted (or none was ever offered), otherwise a `degraded` line
    /// naming the last-good version and the consecutive failure count.
    pub fn healthz_body(&self) -> String {
        match self.consecutive_failures() {
            0 => "ok\n".to_string(),
            n => format!(
                "degraded last_good_version={} consecutive_gate_failures={n}\n",
                self.last_good_version()
            ),
        }
    }

    /// The recorded verdicts, oldest first.
    pub fn history(&self) -> Vec<PublishEvent> {
        self.history.lock().expect("publish history lock").clone()
    }

    /// The `/publish` body: gate summary plus full verdict history, as
    /// one JSON object.
    pub fn history_json(&self) -> String {
        let events = self.history();
        let mut out = String::with_capacity(128 + events.len() * 96);
        out.push_str(&format!(
            "{{\"last_good_version\":{},\"consecutive_gate_failures\":{},\"events\":[",
            self.last_good_version(),
            self.consecutive_failures()
        ));
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"round\":{},\"version\":{},\"accepted\":{},\"reason\":",
                e.round, e.version, e.accepted
            ));
            push_json_str(&mut out, &e.reason);
            out.push_str(",\"detail\":");
            push_json_str(&mut out, &e.detail);
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthz_degrades_on_reject_and_recovers_on_accept() {
        let state = PublishState::new(3);
        assert_eq!(state.healthz_body(), "ok\n");
        state.record_reject(4, 4, "digest", "checksum mismatch");
        state.record_reject(5, 5, "nonfinite", "NaN in row");
        assert_eq!(
            state.healthz_body(),
            "degraded last_good_version=3 consecutive_gate_failures=2\n"
        );
        state.record_accept(6, 6, "cutover");
        assert_eq!(state.healthz_body(), "ok\n");
        assert_eq!(state.last_good_version(), 6);
        assert_eq!(state.consecutive_failures(), 0);
    }

    #[test]
    fn history_json_is_well_formed_and_ordered() {
        let state = PublishState::new(0);
        state.record_accept(1, 1, "cutover");
        state.record_reject(2, 2, "canary", "drift 0.3 > \"bound\" 0.1");
        let json = state.history_json();
        assert!(json.starts_with("{\"last_good_version\":1"), "{json}");
        assert!(json.contains("\"consecutive_gate_failures\":1"), "{json}");
        let accept_at = json.find("\"round\":1").unwrap();
        let reject_at = json.find("\"round\":2").unwrap();
        assert!(accept_at < reject_at, "oldest first: {json}");
        assert!(json.contains("\\\"bound\\\""), "quotes escaped: {json}");
    }

    #[test]
    fn history_is_bounded() {
        let state = PublishState::new(0);
        for round in 0..(HISTORY_CAP as u64 + 10) {
            state.record_reject(round, round, "digest", "");
        }
        let h = state.history();
        assert_eq!(h.len(), HISTORY_CAP);
        assert_eq!(h[0].round, 10, "oldest entries evicted first");
    }
}
