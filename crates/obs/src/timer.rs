//! Scoped wall-clock timing into a histogram.

use crate::histogram::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Records the elapsed wall-clock seconds of its scope into a histogram
/// when dropped.
///
/// ```
/// use mamdr_obs::{MetricsRegistry, ScopedTimer};
/// let reg = MetricsRegistry::new();
/// {
///     let _t = ScopedTimer::new(reg.histogram("epoch_seconds"));
///     // ... timed work ...
/// }
/// assert_eq!(reg.histogram("epoch_seconds").count(), 1);
/// ```
pub struct ScopedTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl ScopedTimer {
    /// Starts timing; the elapsed time lands in `hist` on drop.
    pub fn new(hist: Arc<Histogram>) -> Self {
        ScopedTimer { hist, start: Instant::now() }
    }

    /// Seconds elapsed since the timer started (without stopping it).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_on_drop() {
        let hist = Arc::new(Histogram::new());
        {
            let t = ScopedTimer::new(hist.clone());
            std::thread::sleep(std::time::Duration::from_millis(5));
            assert!(t.elapsed_secs() > 0.0);
        }
        assert_eq!(hist.count(), 1);
        let s = hist.snapshot();
        assert!(s.sum >= 0.005, "recorded {}", s.sum);
        assert!(s.sum < 10.0, "recorded {}", s.sum);
    }

    #[test]
    fn nested_timers_record_independently() {
        let outer = Arc::new(Histogram::new());
        let inner = Arc::new(Histogram::new());
        {
            let _o = ScopedTimer::new(outer.clone());
            for _ in 0..3 {
                let _i = ScopedTimer::new(inner.clone());
            }
        }
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 3);
    }
}
