//! Live introspection over plain `std::net`: a tiny HTTP/1.0 endpoint a
//! running trainer or server opts into (`--introspect-addr`) so operators
//! can inspect it mid-run without attaching a debugger.
//!
//! Routes:
//!
//! * `GET /healthz` — `200 ok` while the process is up. With a
//!   [`PublishState`] attached, reports `degraded` (last-good version,
//!   consecutive gate-failure count) when the publish gate rejected the
//!   most recent candidate — still HTTP 200, because traffic is still
//!   answered from the last-good snapshot.
//! * `GET /metrics` — the registry's Prometheus text snapshot.
//! * `GET /spans`   — the tracer's recent-span ring as JSON (`404` when
//!   no tracer is attached).
//! * `GET /publish` — the publish gate's verdict history as JSON (`404`
//!   when no gate is attached).
//!
//! The server is deliberately minimal: one accept thread, one connection
//! handled at a time, request line parsed and the rest of the request
//! discarded, connection closed after each response. It runs entirely off
//! the training/serving hot path — handlers only *read* shared state
//! (atomic counters, the span ring) — so attaching it never perturbs
//! results.

use crate::health::PublishState;
use crate::metrics::MetricsRegistry;
use crate::trace::Tracer;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum spans `/spans` returns (newest are kept).
const SPANS_LIMIT: usize = 256;

/// A running introspection endpoint. Dropping it (or calling
/// [`IntrospectServer::stop`]) shuts the listener down.
pub struct IntrospectServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl IntrospectServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving in a background thread.
    pub fn start(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> std::io::Result<IntrospectServer> {
        Self::start_with_publish(addr, registry, tracer, None)
    }

    /// [`start`](Self::start) with a publish-gate state attached:
    /// `/healthz` reflects gate degradation and `/publish` serves the
    /// verdict history.
    pub fn start_with_publish(
        addr: &str,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
        publish: Option<Arc<PublishState>>,
    ) -> std::io::Result<IntrospectServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("mamdr-introspect".into())
            .spawn(move || accept_loop(listener, registry, tracer, publish, stop_flag))
            .expect("spawn introspect thread");
        Ok(IntrospectServer { addr: bound, stop, handle: Some(handle) })
    }

    /// The address actually bound (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for IntrospectServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    tracer: Option<Arc<Tracer>>,
    publish: Option<Arc<PublishState>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Introspection is best-effort: a misbehaving client is
                // dropped, never propagated into the host process.
                let _ = handle_conn(stream, &registry, tracer.as_deref(), publish.as_deref());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_conn(
    stream: TcpStream,
    registry: &MetricsRegistry,
    tracer: Option<&Tracer>,
    publish: Option<&PublishState>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = parse_path(&request_line);
    let (status, content_type, body) = match path.as_deref() {
        Some("/healthz") => (
            "200 OK",
            "text/plain; charset=utf-8",
            publish.map_or_else(|| "ok\n".to_string(), PublishState::healthz_body),
        ),
        Some("/metrics") => {
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", registry.render_prometheus())
        }
        Some("/spans") => match tracer {
            Some(t) => ("200 OK", "application/json", t.spans_json(SPANS_LIMIT)),
            None => ("404 Not Found", "text/plain; charset=utf-8", "no tracer attached\n".into()),
        },
        Some("/publish") => match publish {
            Some(p) => ("200 OK", "application/json", p.history_json()),
            None => {
                ("404 Not Found", "text/plain; charset=utf-8", "no publish gate attached\n".into())
            }
        },
        Some(_) => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        None => ("400 Bad Request", "text/plain; charset=utf-8", "bad request\n".to_string()),
    };
    let mut out = stream;
    write!(
        out,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

/// Extracts the path of `GET <path> HTTP/1.x`; `None` for anything else.
fn parse_path(request_line: &str) -> Option<String> {
    let mut parts = request_line.split_whitespace();
    if parts.next() != Some("GET") {
        return None;
    }
    let target = parts.next()?;
    // Strip any query string: routes here take no parameters.
    let path = target.split('?').next().unwrap_or(target);
    Some(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("write");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read");
        body
    }

    #[test]
    fn serves_healthz_metrics_and_spans() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("demo_total").add(3);
        let tracer = Arc::new(Tracer::new());
        tracer.span("warmup").finish();
        let server = IntrospectServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            Some(Arc::clone(&tracer)),
        )
        .expect("start");
        let addr = server.addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("demo_total 3"), "{metrics}");
        assert!(metrics.contains("# TYPE demo_total counter"), "{metrics}");

        let spans = get(addr, "/spans");
        assert!(spans.contains("HTTP/1.0 200 OK"), "{spans}");
        assert!(spans.contains("\"name\":\"warmup\""), "{spans}");

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        server.stop();
    }

    #[test]
    fn healthz_reports_gate_degradation_and_publish_dumps_history() {
        let registry = Arc::new(MetricsRegistry::new());
        let state = Arc::new(PublishState::new(7));
        let server = IntrospectServer::start_with_publish(
            "127.0.0.1:0",
            Arc::clone(&registry),
            None,
            Some(Arc::clone(&state)),
        )
        .expect("start");
        let addr = server.addr();

        // Healthy gate: plain ok, exactly as without a gate.
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        // Rejected candidate: still 200 (traffic is served from
        // last-good), body flips to degraded with version + failure count.
        state.record_reject(8, 8, "digest", "checksum mismatch");
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200 OK"), "{health}");
        assert!(
            health.ends_with("degraded last_good_version=7 consecutive_gate_failures=1\n"),
            "{health}"
        );

        let publish = get(addr, "/publish");
        assert!(publish.contains("HTTP/1.0 200 OK"), "{publish}");
        assert!(publish.contains("\"reason\":\"digest\""), "{publish}");
        assert!(publish.contains("\"last_good_version\":7"), "{publish}");

        // An accepted candidate clears the degradation.
        state.record_accept(9, 9, "cutover");
        assert!(get(addr, "/healthz").ends_with("ok\n"));
        server.stop();
    }

    #[test]
    fn publish_route_is_404_without_gate() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = IntrospectServer::start("127.0.0.1:0", registry, None).expect("start");
        let body = get(server.addr(), "/publish");
        assert!(body.starts_with("HTTP/1.0 404"), "{body}");
    }

    #[test]
    fn spans_route_is_404_without_tracer() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = IntrospectServer::start("127.0.0.1:0", registry, None).expect("start");
        let body = get(server.addr(), "/spans");
        assert!(body.starts_with("HTTP/1.0 404"), "{body}");
    }

    #[test]
    fn non_get_is_rejected() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = IntrospectServer::start("127.0.0.1:0", registry, None).expect("start");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").expect("write");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("read");
        assert!(body.starts_with("HTTP/1.0 400"), "{body}");
    }
}
