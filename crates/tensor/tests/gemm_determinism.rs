//! The kernel layer's determinism contract, checked from outside the crate:
//! blocked/parallel [`Tensor::gemm`] must be **bit-identical** to a naive
//! reference implementation for every transpose variant, across odd shapes
//! (1×k, k×1, sizes that don't divide the cache blocks) and thread counts
//! 1/2/8. The reference below fixes the same accumulation order the kernels
//! promise: strictly k-increasing per output element, zeros of the lhs
//! skipped for the NN and TN variants (exactly as the pre-kernel naive
//! loops did).

use mamdr_tensor::pool;
use mamdr_tensor::rng::seeded;
use mamdr_tensor::{Act, Tensor};

/// Naive op(a) @ op(b) with the kernels' documented accumulation order.
fn reference_gemm(a: &Tensor, b: &Tensor, lhs_t: bool, rhs_t: bool) -> Tensor {
    let (ra, ca) = (a.shape()[0], a.shape()[1]);
    let (rb, cb) = (b.shape()[0], b.shape()[1]);
    let (m, k) = if lhs_t { (ca, ra) } else { (ra, ca) };
    let n = if rhs_t { rb } else { cb };
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = if lhs_t { ad[kk * ca + i] } else { ad[i * ca + kk] };
            // NT accumulates every term; NN/TN skip zero lhs elements.
            if !rhs_t && av == 0.0 {
                continue;
            }
            for j in 0..n {
                let bv = if rhs_t { bd[j * cb + kk] } else { bd[kk * cb + j] };
                out[i * n + j] += av * bv;
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

fn randn(seed: u64, shape: &[usize]) -> Tensor {
    Tensor::randn(&mut seeded(seed), shape, 0.0, 1.0)
}

/// Sparse-ish input: some exact zeros, to exercise the zero-skip path.
fn randn_sparse(seed: u64, shape: &[usize]) -> Tensor {
    let mut t = randn(seed, shape);
    for (i, v) in t.data_mut().iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    t
}

/// Shapes chosen to stress the blocking: degenerate rows/cols, sizes that
/// don't divide COL_BLOCK (128) or the NT 4-wide register block, and one
/// comfortably past both.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 7, 5),
    (5, 1, 3),
    (3, 9, 1),
    (1, 1, 1),
    (5, 7, 129),
    (13, 131, 4),
    (33, 17, 257),
    (64, 96, 130),
];

#[test]
fn gemm_is_bit_identical_to_reference_across_threads_and_shapes() {
    let restore = pool::configured_threads();
    for &(m, k, n) in SHAPES {
        for (lhs_t, rhs_t) in [(false, false), (false, true), (true, false), (true, true)] {
            let a_shape = if lhs_t { [k, m] } else { [m, k] };
            let b_shape = if rhs_t { [n, k] } else { [k, n] };
            let a = randn_sparse(m as u64 * 31 + k as u64, &a_shape);
            let b = randn_sparse(n as u64 * 17 + k as u64, &b_shape);
            let expect = reference_gemm(&a, &b, lhs_t, rhs_t);
            for threads in [1usize, 2, 8] {
                pool::set_threads(threads);
                let got = a.gemm(&b, lhs_t, rhs_t);
                assert_eq!(got.shape(), expect.shape());
                assert_eq!(
                    got.data(),
                    expect.data(),
                    "gemm({m}x{k}x{n}, lhs_t={lhs_t}, rhs_t={rhs_t}) differs from the \
                     reference at {threads} threads"
                );
            }
        }
    }
    pool::set_threads(restore);
}

#[test]
fn legacy_matmul_wrappers_agree_with_gemm() {
    let a = randn(1, &[9, 6]);
    let b = randn(2, &[6, 4]);
    assert_eq!(a.matmul(&b).data(), a.gemm(&b, false, false).data());
    let bt = randn(3, &[4, 6]);
    assert_eq!(a.matmul_nt(&bt).data(), a.gemm(&bt, false, true).data());
    let at = randn(4, &[6, 9]);
    assert_eq!(at.matmul_tn(&b).data(), at.gemm(&b, true, false).data());
}

#[test]
fn gemm_bias_act_is_bit_identical_across_threads() {
    let restore = pool::configured_threads();
    let x = randn_sparse(7, &[37, 19]);
    let w = randn(8, &[19, 33]);
    let bias = randn(9, &[33]);
    for act in [Act::Linear, Act::Relu, Act::Sigmoid, Act::Tanh] {
        pool::set_threads(1);
        let serial = x.gemm_bias_act(&w, Some(&bias), act);
        for threads in [2usize, 8] {
            pool::set_threads(threads);
            let parallel = x.gemm_bias_act(&w, Some(&bias), act);
            assert_eq!(serial.data(), parallel.data(), "{act:?} differs at {threads} threads");
        }
    }
    pool::set_threads(restore);
}

#[test]
fn repeated_dispatch_stays_deterministic() {
    // A long sequence of parallel dispatches (the training loop's shape)
    // must produce the same bytes as its first run.
    let restore = pool::configured_threads();
    pool::set_threads(8);
    let a = randn(11, &[65, 43]);
    let b = randn(12, &[43, 29]);
    let first = a.gemm(&b, false, false);
    for _ in 0..50 {
        assert_eq!(a.gemm(&b, false, false).data(), first.data());
    }
    pool::set_threads(restore);
}
