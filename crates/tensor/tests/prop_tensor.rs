//! Property-based tests of the tensor algebra.

use proptest::prelude::*;

use mamdr_tensor::Tensor;

/// Strategy: a matrix with the given dims and bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec([rows, cols], data))
}

/// Strategy: small matrix dims.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

proptest! {
    #[test]
    fn matmul_is_associative((m, k, n) in dims(), p in 1usize..5, seed in 0u64..1000) {
        let mut rng = mamdr_tensor::rng::seeded(seed);
        let a = Tensor::randn(&mut rng, [m, k], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, [k, n], 0.0, 1.0);
        let c = Tensor::randn(&mut rng, [n, p], 0.0, 1.0);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn matmul_distributes_over_add((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = mamdr_tensor::rng::seeded(seed);
        let a = Tensor::randn(&mut rng, [m, k], 0.0, 1.0);
        let b1 = Tensor::randn(&mut rng, [k, n], 0.0, 1.0);
        let b2 = Tensor::randn(&mut rng, [k, n], 0.0, 1.0);
        let lhs = a.matmul(&b1.add(&b2));
        let rhs = a.matmul(&b1).add(&a.matmul(&b2));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_respects_matmul((m, k, n) in dims(), seed in 0u64..1000) {
        // (A @ B)ᵀ = Bᵀ @ Aᵀ
        let mut rng = mamdr_tensor::rng::seeded(seed);
        let a = Tensor::randn(&mut rng, [m, k], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, [k, n], 0.0, 1.0);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn concat_slice_roundtrip(a in matrix(3, 4), b in matrix(3, 2)) {
        let cat = Tensor::concat_cols(&[&a, &b]);
        prop_assert_eq!(cat.slice_cols(0, 4), a);
        prop_assert_eq!(cat.slice_cols(4, 2), b);
    }

    #[test]
    fn gather_scatter_is_adjoint(
        ids in proptest::collection::vec(0u32..8, 1..12),
        seed in 0u64..1000,
    ) {
        // <gather(T, ids), G> == <T, scatter(G, ids)> for all T, G —
        // the defining property of the embedding backward rule.
        let mut rng = mamdr_tensor::rng::seeded(seed);
        let table = Tensor::randn(&mut rng, [8, 3], 0.0, 1.0);
        let g = Tensor::randn(&mut rng, [ids.len(), 3], 0.0, 1.0);
        let lhs = table.gather_rows(&ids).dot(&g) as f64;
        let mut scattered = Tensor::zeros([8, 3]);
        scattered.scatter_add_rows(&ids, &g);
        let rhs = table.dot(&scattered) as f64;
        prop_assert!((lhs - rhs).abs() < 1e-3, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn softmax_rows_is_distribution(m in matrix(4, 5)) {
        let s = m.softmax_rows();
        prop_assert!(s.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(m in matrix(3, 4), shift in -5.0f32..5.0) {
        let shifted = m.map(|x| x + shift);
        prop_assert!(m.softmax_rows().max_abs_diff(&shifted.softmax_rows()) < 1e-4);
    }

    #[test]
    fn row_broadcasts_match_manual(m in matrix(3, 4), row in matrix(1, 4)) {
        let row_flat = row.clone().reshape([4]);
        let added = m.add_row_broadcast(&row_flat);
        for i in 0..3 {
            for j in 0..4 {
                prop_assert!((added.at(i, j) - (m.at(i, j) + row.at(0, j))).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn sum_rows_and_cols_agree_with_total(m in matrix(4, 3)) {
        let total = m.sum();
        prop_assert!((m.sum_rows().sum() - total).abs() < 1e-3);
        prop_assert!((m.sum_cols().sum() - total).abs() < 1e-3);
    }

    #[test]
    fn axpy_matches_add_scale(a in matrix(2, 3), b in matrix(2, 3), alpha in -3.0f32..3.0) {
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let via_ops = a.add(&b.scale(alpha));
        prop_assert!(via_axpy.max_abs_diff(&via_ops) < 1e-4);
    }

    #[test]
    fn norm_triangle_inequality(a in matrix(2, 4), b in matrix(2, 4)) {
        prop_assert!(a.add(&b).norm() <= a.norm() + b.norm() + 1e-4);
    }
}
