//! The dense tensor type and its constructors / elementwise arithmetic.

use crate::rng::normal;
use crate::shape::Shape;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// This is the only value type flowing through the autodiff tape, the models
/// and the learning frameworks. It is deliberately simple: owned storage,
/// contiguous layout, no views. Cheap cloning is acceptable at the scale of
/// the MDR benchmark datasets; the PS-Worker crate handles the large-sparse
/// regime separately.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Builds a tensor from a shape and backing data (length must match).
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {:?} does not match data length {}",
            shape,
            data.len()
        );
        Tensor { shape, data }
    }

    /// An all-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// An all-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Gaussian-initialized tensor with the given mean and standard deviation.
    pub fn randn(rng: &mut impl Rng, shape: impl Into<Shape>, mean: f32, std: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| mean + std * normal(rng)).collect();
        Tensor { shape, data }
    }

    /// Uniform-initialized tensor on `[lo, hi)`.
    pub fn rand_uniform(rng: &mut impl Rng, shape: impl Into<Shape>, lo: f32, hi: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape as a dims slice.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's shape object.
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Read-only view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single element of a scalar or one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a one-element tensor");
        self.data[0]
    }

    /// Matrix dimensions `(rows, cols)`; panics unless rank ≤ 2.
    pub fn matrix_dims(&self) -> (usize, usize) {
        self.shape.as_matrix()
    }

    /// Element at `(row, col)` of a matrix.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        let (_, c) = self.matrix_dims();
        self.data[row * c + col]
    }

    /// Mutable element at `(row, col)` of a matrix.
    pub fn at_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        let (_, c) = self.matrix_dims();
        &mut self.data[row * c + col]
    }

    /// Reshapes in place (element count must be preserved).
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(shape.numel(), self.numel(), "reshape must preserve element count");
        self.shape = shape;
        self
    }

    /// Returns a copy of row `r` of a matrix.
    pub fn row(&self, r: usize) -> &[f32] {
        let (rows, cols) = self.matrix_dims();
        assert!(r < rows, "row {} out of bounds for {} rows", r, rows);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shape tensors.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            self.shape.same(&other.shape),
            "zip shape mismatch: {:?} vs {:?}",
            self.shape,
            other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Elementwise add.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtract.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// `self += alpha * other` (BLAS axpy), in place.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(
            self.shape.same(&other.shape),
            "axpy shape mismatch: {:?} vs {:?}",
            self.shape,
            other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Inner product of two same-shape tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert!(
            self.shape.same(&other.shape),
            "dot shape mismatch: {:?} vs {:?}",
            self.shape,
            other.shape
        );
        self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference to another same-shape tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert!(self.shape.same(&other.shape));
        self.data.iter().zip(&other.data).map(|(&a, &b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({:?}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, ..., {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    #[should_panic(expected = "does not match data length")]
    fn mismatched_construction_panics() {
        Tensor::from_vec([2, 2], vec![1.0; 5]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec([2, 2], vec![4., 3., 2., 1.]);
        assert_eq!(a.add(&b).data(), &[5., 5., 5., 5.]);
        assert_eq!(a.sub(&b).data(), &[-3., -1., 1., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 6., 6., 4.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
        assert_eq!(a.dot(&b), 4. + 6. + 6. + 4.);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Tensor::zeros([3]);
        let b = Tensor::from_vec([3], vec![1., 2., 3.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[0.5, 1.0, 1.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1., 2., 3., 4.]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn randn_statistics_are_reasonable() {
        let mut rng = seeded(42);
        let t = Tensor::randn(&mut rng, [10_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {} too far from 1", mean);
        assert!((var - 4.0).abs() < 0.3, "var {} too far from 4", var);
    }

    #[test]
    fn rand_uniform_within_bounds() {
        let mut rng = seeded(3);
        let t = Tensor::rand_uniform(&mut rng, [1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape([3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn determinism_with_same_seed() {
        let a = Tensor::randn(&mut seeded(9), [32], 0.0, 1.0);
        let b = Tensor::randn(&mut seeded(9), [32], 0.0, 1.0);
        assert_eq!(a, b);
    }
}
