//! Weight initializers.
//!
//! The paper trains every architecture with standard DeepCTR-style inits:
//! Glorot/Xavier for dense layers, scaled normal for embeddings, zeros for
//! biases. Domain-specific parameters θi start at zero so that at epoch 0 the
//! composed parameters Θ = θS + θi equal the shared parameters exactly
//! (paper Eq. 4).

use crate::tensor::Tensor;
use rand::Rng;

/// Initialization scheme for a parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases, domain-specific deltas).
    Zeros,
    /// Constant fill.
    Constant(f32),
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Glorot/Xavier normal: `N(0, 2 / (fan_in + fan_out))`.
    XavierNormal,
    /// He/Kaiming normal: `N(0, 2 / fan_in)` — used before ReLU layers.
    HeNormal,
    /// Plain normal with the given standard deviation (embedding tables).
    Normal(f32),
    /// Uniform on `[-a, a]`.
    Uniform(f32),
}

impl Init {
    /// Materializes a tensor of the given shape.
    ///
    /// For rank-2 shapes, `fan_in`/`fan_out` are rows/cols; for other ranks
    /// both default to the element count's square root heuristic.
    pub fn build(self, rng: &mut impl Rng, shape: &[usize]) -> Tensor {
        let (fan_in, fan_out) = match shape {
            [r, c] => (*r, *c),
            [n] => (*n, *n),
            _ => {
                let n = shape.iter().product::<usize>().max(1);
                (n, n)
            }
        };
        match self {
            Init::Zeros => Tensor::zeros(shape),
            Init::Constant(v) => Tensor::full(shape, v),
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::rand_uniform(rng, shape, -a, a)
            }
            Init::XavierNormal => {
                let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::randn(rng, shape, 0.0, std)
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in as f32).sqrt();
                Tensor::randn(rng, shape, 0.0, std)
            }
            Init::Normal(std) => Tensor::randn(rng, shape, 0.0, std),
            Init::Uniform(a) => Tensor::rand_uniform(rng, shape, -a, a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn zeros_and_constant() {
        let mut rng = seeded(1);
        assert!(Init::Zeros.build(&mut rng, &[3, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Init::Constant(0.5).build(&mut rng, &[4]).data().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = seeded(2);
        let t = Init::XavierUniform.build(&mut rng, &[100, 50]);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= a));
        // should not be degenerate
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn he_normal_variance() {
        let mut rng = seeded(3);
        let t = Init::HeNormal.build(&mut rng, &[256, 256]);
        let var = t.data().iter().map(|&x| x * x).sum::<f32>() / t.numel() as f32;
        let expected = 2.0 / 256.0;
        assert!((var - expected).abs() < expected * 0.2, "var {} vs {}", var, expected);
    }

    #[test]
    fn normal_std() {
        let mut rng = seeded(4);
        let t = Init::Normal(0.01).build(&mut rng, &[10_000]);
        let var = t.data().iter().map(|&x| x * x).sum::<f32>() / t.numel() as f32;
        assert!((var.sqrt() - 0.01).abs() < 0.002);
    }
}
