//! Shape bookkeeping for row-major dense tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a tensor: a small vector of dimension extents.
///
/// Rank 0 (scalar) through rank 3 cover every shape used in this workspace;
/// higher ranks are supported by the generic code paths but untested beyond
/// rank 4.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Interprets this shape as a matrix `[rows, cols]`.
    ///
    /// Rank-1 shapes are viewed as a single row; panics for other ranks.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.0.as_slice() {
            [r, c] => (*r, *c),
            [c] => (1, *c),
            other => panic!("shape {:?} is not a matrix", other),
        }
    }

    /// True if both shapes are identical.
    pub fn same(&self, other: &Shape) -> bool {
        self.0 == other.0
    }

    /// Computes the shape resulting from broadcasting `self` with `other`
    /// under NumPy alignment rules (right-aligned; extents must match or one
    /// of them must be 1).
    ///
    /// Returns `None` when the shapes are incompatible.
    pub fn broadcast(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for i in 0..rank {
            let a = *self.0.get(self.rank().wrapping_sub(1).wrapping_sub(i)).unwrap_or(&1);
            let b = *other.0.get(other.rank().wrapping_sub(1).wrapping_sub(i)).unwrap_or(&1);
            let d = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return None;
            };
            dims[rank - 1 - i] = d;
        }
        Some(Shape(dims))
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn matrix_view() {
        assert_eq!(Shape::new(&[2, 3]).as_matrix(), (2, 3));
        assert_eq!(Shape::new(&[7]).as_matrix(), (1, 7));
    }

    #[test]
    #[should_panic(expected = "not a matrix")]
    fn matrix_view_rejects_rank3() {
        Shape::new(&[2, 3, 4]).as_matrix();
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(&[4, 3]);
        let b = Shape::new(&[3]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[4, 3]);
        let c = Shape::new(&[4, 1]);
        assert_eq!(a.broadcast(&c).unwrap().dims(), &[4, 3]);
        let bad = Shape::new(&[5, 3]);
        assert!(a.broadcast(&bad).is_none());
        // scalar broadcasts with anything
        assert_eq!(a.broadcast(&Shape::scalar()).unwrap().dims(), &[4, 3]);
    }
}
