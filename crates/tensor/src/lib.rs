//! # mamdr-tensor
//!
//! Dense `f32` tensor math substrate for the MAMDR reproduction.
//!
//! The paper's reference implementation runs on TensorFlow; no comparable
//! training stack exists in Rust, so this crate provides the minimal-but-real
//! numeric core the rest of the workspace builds on: row-major dense tensors,
//! BLAS-free blocked matrix multiplication behind the unified
//! [`Tensor::gemm`] entry point, broadcasting elementwise arithmetic,
//! reductions, embedding gather/scatter, and the weight initializers the CTR
//! models need (Xavier/He/normal/uniform).
//!
//! Everything is deterministic given a seed: all random entry points take an
//! explicit [`rand::Rng`], and the crate exposes [`rng::seeded`] for
//! reproducible experiment pipelines. The GEMM kernels run on a persistent
//! worker pool ([`pool`]) with a fixed reduction order, so results are
//! bit-identical at any thread count (`MAMDR_THREADS` / [`pool::set_threads`]).
//!
//! ```
//! use mamdr_tensor::{Tensor, rng};
//!
//! let mut r = rng::seeded(7);
//! let a = Tensor::randn(&mut r, [2, 3], 0.0, 1.0);
//! let b = Tensor::randn(&mut r, [3, 4], 0.0, 1.0);
//! let c = a.gemm(&b, false, false);
//! assert_eq!(c.shape(), &[2, 4]);
//! ```

pub mod gemm;
pub mod init;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use gemm::{stable_sigmoid, Act};
pub use shape::Shape;
pub use tensor::Tensor;
