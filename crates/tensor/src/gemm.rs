//! Deterministic blocked GEMM kernels behind the unified [`Tensor::gemm`]
//! entry point.
//!
//! One API covers all four transpose layouts (`op(lhs) @ op(rhs)` with
//! `op ∈ {identity, transpose}`), replacing the old `matmul` /
//! `matmul_nt` / `matmul_tn` triple: callers say *what* product they want
//! and the dispatch picks the kernel, so the autodiff backward can compose
//! adjoints without materializing transposes.
//!
//! # Determinism contract
//!
//! Every kernel computes each output element as a sum accumulated in
//! strictly `k`-increasing order, and every output row is produced by
//! exactly one worker running the same code regardless of how rows were
//! partitioned (see [`crate::pool`]). Consequently the result is
//! **bit-identical at any thread count** and bit-identical to the original
//! single-threaded loops: the NN and TN kernels keep their zero-skip on
//! left-operand elements (skipping `+= 0.0 * b` changes nothing in IEEE-754
//! except for NaN/Inf propagation, which the legacy kernels already
//! skipped), and the NT kernel keeps its plain dot products. Cache blocking
//! reorders only *which element* is updated next, never the order of
//! contributions to a single element.

use crate::pool;
use crate::tensor::Tensor;

/// Column-block width for the NN kernel: keeps the active output slice and
/// the streamed rhs panel rows inside L1 while preserving the per-element
/// accumulation order.
const COL_BLOCK: usize = 128;

/// Minimum multiply-accumulate count one parallel chunk must amortize;
/// below this the dispatch overhead (channel send + latch wakeup, ~tens of
/// µs) beats the speedup and GEMMs stay serial. 2^17 MACs is roughly 100 µs
/// of kernel work, measured on the training-shaped GEMMs of the benches.
const MIN_CHUNK_FLOPS: usize = 1 << 17;

/// Fused activation applied by [`Tensor::gemm_bias_act`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// Identity (no activation).
    Linear,
    /// `max(x, 0)`.
    Relu,
    /// Numerically stable logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Act {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Act::Linear => x,
            Act::Relu => x.max(0.0),
            Act::Sigmoid => stable_sigmoid(x),
            Act::Tanh => x.tanh(),
        }
    }
}

/// Numerically stable logistic sigmoid.
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Minimum rows per parallel chunk for a GEMM with `k × n` work per row.
fn grain_rows(k: usize, n: usize) -> usize {
    (MIN_CHUNK_FLOPS / (k * n).max(1)).max(1)
}

/// `a[m,k] @ b[k,n]` into `out` rows `rows` (i-k-j with column blocking).
fn kernel_nn(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    for (bi, i) in rows.enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[bi * n..(bi + 1) * n];
        let mut jb = 0usize;
        while jb < n {
            let je = (jb + COL_BLOCK).min(n);
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let bpan = &b[kk * n + jb..kk * n + je];
                for (o, &bv) in orow[jb..je].iter_mut().zip(bpan) {
                    *o += av * bv;
                }
            }
            jb = je;
        }
    }
}

/// `a[m,k] @ b[n,k]ᵀ` into `out` rows `rows` (register-blocked dot products).
fn kernel_nt(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    for (bi, i) in rows.enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[bi * n..(bi + 1) * n];
        let mut j = 0usize;
        // Four dot products per pass reuse the streamed lhs row from
        // registers; each accumulator still sums in k-increasing order.
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (kk, &av) in arow.iter().enumerate() {
                s0 += av * b0[kk];
                s1 += av * b1[kk];
                s2 += av * b2[kk];
                s3 += av * b3[kk];
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += 4;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            orow[j] = acc;
            j += 1;
        }
    }
}

/// `a[k,m]ᵀ @ b[k,n]` into `out` rows `rows` (k-outer axpy with zero-skip).
fn kernel_tn(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for (bi, i) in rows.clone().enumerate() {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[bi * n..(bi + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `a[k,m]ᵀ @ b[n,k]ᵀ` into `out` rows `rows` (strided dot products).
fn kernel_tt(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    for (bi, i) in rows.enumerate() {
        let orow = &mut out[bi * n..(bi + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (kk, &bv) in brow.iter().enumerate() {
                acc += a[kk * m + i] * bv;
            }
            *o = acc;
        }
    }
}

impl Tensor {
    /// General matrix product `op(self) @ op(rhs)` where `op` transposes its
    /// operand when the corresponding flag is set; no transpose is ever
    /// materialized.
    ///
    /// Shapes: with `self` as `[r1,c1]` and `rhs` as `[r2,c2]`, the result is
    /// `[m,n]` where `m/k` come from `self` (swapped under `lhs_t`) and
    /// `k/n` from `rhs` (swapped under `rhs_t`); the two `k`s must agree.
    ///
    /// Rows of the output are computed in parallel on the [`crate::pool`]
    /// workers when the matrix is large enough to amortize dispatch; see the
    /// module docs for the bit-identity guarantee.
    pub fn gemm(&self, rhs: &Tensor, lhs_t: bool, rhs_t: bool) -> Tensor {
        let (r1, c1) = self.matrix_dims();
        let (r2, c2) = rhs.matrix_dims();
        let (m, k) = if lhs_t { (c1, r1) } else { (r1, c1) };
        let (k2, n) = if rhs_t { (c2, r2) } else { (r2, c2) };
        assert_eq!(
            k, k2,
            "gemm inner dims mismatch: op(lhs)={}x{} @ op(rhs)={}x{} (lhs_t={}, rhs_t={})",
            m, k, k2, n, lhs_t, rhs_t
        );
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        pool::for_each_row_block(&mut out, n, grain_rows(k, n), |rows, block| {
            match (lhs_t, rhs_t) {
                (false, false) => kernel_nn(a, b, k, n, rows, block),
                (false, true) => kernel_nt(a, b, k, n, rows, block),
                (true, false) => kernel_tn(a, b, m, k, n, rows, block),
                (true, true) => kernel_tt(a, b, m, k, n, rows, block),
            }
        });
        Tensor::from_vec([m, n], out)
    }

    /// Fused dense-layer forward: `act(self @ w + bias)` in one pass over the
    /// output.
    ///
    /// Bit-identical to the unfused `matmul` → `add_row_broadcast` →
    /// elementwise-activation chain: the product uses the same NN kernel, and
    /// the bias add and activation are applied per element in the same order
    /// the separate passes would.
    pub fn gemm_bias_act(&self, w: &Tensor, bias: Option<&Tensor>, act: Act) -> Tensor {
        let (m, k) = self.matrix_dims();
        let (k2, n) = w.matrix_dims();
        assert_eq!(k, k2, "gemm_bias_act inner dims mismatch: {}x{} @ {}x{}", m, k, k2, n);
        if let Some(b) = bias {
            assert_eq!(b.numel(), n, "gemm_bias_act bias width mismatch: {} vs {}", b.numel(), n);
        }
        let a = self.data();
        let wd = w.data();
        let bias = bias.map(|b| b.data());
        let mut out = vec![0.0f32; m * n];
        pool::for_each_row_block(&mut out, n, grain_rows(k, n), |rows, block| {
            kernel_nn(a, wd, k, n, rows, block);
            for orow in block.chunks_exact_mut(n) {
                if let Some(bias) = bias {
                    for (o, &bv) in orow.iter_mut().zip(bias) {
                        *o += bv;
                    }
                }
                if act != Act::Linear {
                    for o in orow.iter_mut() {
                        *o = act.apply(*o);
                    }
                }
            }
        });
        Tensor::from_vec([m, n], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn gemm_matches_explicit_transposes() {
        let mut rng = seeded(11);
        let a = Tensor::randn(&mut rng, [5, 7], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, [7, 3], 0.0, 1.0);
        let reference = a.gemm(&b, false, false);
        assert_eq!(reference.shape(), &[5, 3]);
        assert!(a.gemm(&b.transpose(), false, true).max_abs_diff(&reference) < 1e-5);
        assert!(a.transpose().gemm(&b, true, false).max_abs_diff(&reference) < 1e-5);
        assert!(a.transpose().gemm(&b.transpose(), true, true).max_abs_diff(&reference) < 1e-5);
    }

    #[test]
    fn gemm_bias_act_matches_unfused_chain() {
        let mut rng = seeded(12);
        let x = Tensor::randn(&mut rng, [9, 6], 0.0, 1.0);
        let w = Tensor::randn(&mut rng, [6, 4], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, [4], 0.0, 1.0);
        for act in [Act::Linear, Act::Relu, Act::Sigmoid, Act::Tanh] {
            let fused = x.gemm_bias_act(&w, Some(&b), act);
            let unfused = x.gemm(&w, false, false).add_row_broadcast(&b).map(|v| act.apply(v));
            assert_eq!(fused, unfused, "fusion changed results for {:?}", act);
        }
        let no_bias = x.gemm_bias_act(&w, None, Act::Relu);
        let unfused = x.gemm(&w, false, false).map(|v| Act::Relu.apply(v));
        assert_eq!(no_bias, unfused);
    }

    #[test]
    #[should_panic(expected = "gemm inner dims mismatch")]
    fn gemm_rejects_bad_inner_dims() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        a.gemm(&b, false, false);
    }

    #[test]
    fn act_apply_values() {
        assert_eq!(Act::Linear.apply(-2.5), -2.5);
        assert_eq!(Act::Relu.apply(-2.5), 0.0);
        assert_eq!(Act::Relu.apply(1.5), 1.5);
        assert!((Act::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        assert!((Act::Tanh.apply(1.0) - 1.0f32.tanh()).abs() < 1e-7);
        // Stable at extremes.
        assert_eq!(Act::Sigmoid.apply(500.0), 1.0);
        assert_eq!(Act::Sigmoid.apply(-500.0), 0.0);
    }
}
