//! A persistent worker pool for deterministic data parallelism.
//!
//! The pool exists so the GEMM kernels (and other per-row hot loops) can
//! split work across cores **without changing results**: callers partition
//! their output into disjoint chunks, every chunk is computed by exactly one
//! thread running thread-count-independent code, and [`run`] blocks until all
//! chunks finish. Because no floating-point reduction ever crosses a chunk
//! boundary, the result is bit-identical at any thread count — `threads = 1`
//! is the reference, not a special case.
//!
//! Workers are plain `std::thread`s spawned lazily on first parallel dispatch
//! and kept alive for the process lifetime (the MDR benchmarks dispatch
//! millions of small GEMMs; respawning per call would dominate). The thread
//! count comes from [`set_threads`], falling back to the `MAMDR_THREADS`
//! environment variable and then to the machine's available parallelism.
//!
//! Nested dispatch is legal but runs serially: a task that itself calls
//! [`run`] executes its chunks inline. Workers blocking on sub-jobs that
//! queue behind the very jobs occupying those workers would deadlock, and the
//! determinism contract makes serial fallback observationally identical.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, OnceLock};

/// Configured worker count; 0 means "not yet resolved".
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while this thread is executing inside a parallel region (either
    /// as a pool worker or as a dispatching caller running its own chunk).
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Sets the kernel thread count for the whole process (clamped to ≥ 1).
///
/// Safe to call at any time; in-flight dispatches finish with the count they
/// started with. Determinism makes the race harmless either way.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The kernel thread count currently in effect.
///
/// Resolution order: the last [`set_threads`] call, else the `MAMDR_THREADS`
/// environment variable, else `std::thread::available_parallelism()`.
pub fn configured_threads() -> usize {
    let n = THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let n = std::env::var("MAMDR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
    // Competing first calls compute the same value, so the race is benign.
    THREADS.store(n, Ordering::Relaxed);
    n
}

/// A unit of work handed to a worker: run `(*task)(chunk)` and hit the latch.
///
/// The task pointer's borrow is lifetime-erased; [`run`] guarantees it stays
/// valid by not returning until every chunk has signalled the latch.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    chunk: usize,
    latch: *const Latch,
}

// SAFETY: the pointee is `Sync` (shared by all workers) and `run` keeps both
// pointers alive until the latch opens, so sending the raw pointers to
// another thread is sound.
unsafe impl Send for Job {}

/// Countdown latch with panic flag: dispatchers block until every outstanding
/// chunk has completed (successfully or by panicking).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn complete_one(&self) {
        let mut rem = self.remaining.lock().expect("pool latch poisoned");
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut rem = self.remaining.lock().expect("pool latch poisoned");
        while *rem > 0 {
            rem = self.done.wait(rem).expect("pool latch poisoned");
        }
    }
}

static SENDERS: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();

/// Ensures at least `needed` workers exist, then calls `f` with their queues.
fn with_senders<R>(needed: usize, f: impl FnOnce(&[Sender<Job>]) -> R) -> R {
    let lock = SENDERS.get_or_init(|| Mutex::new(Vec::new()));
    let mut senders = lock.lock().expect("pool sender registry poisoned");
    while senders.len() < needed {
        let (tx, rx) = channel::<Job>();
        let idx = senders.len();
        std::thread::Builder::new()
            .name(format!("mamdr-pool-{idx}"))
            .spawn(move || worker_loop(rx))
            .expect("failed to spawn pool worker");
        senders.push(tx);
    }
    f(&senders)
}

fn worker_loop(rx: Receiver<Job>) {
    IN_PARALLEL.with(|flag| flag.set(true));
    while let Ok(job) = rx.recv() {
        // SAFETY: the dispatching `run` call blocks on the latch until this
        // job completes, keeping both pointers valid.
        let task = unsafe { &*job.task };
        let ok = catch_unwind(AssertUnwindSafe(|| task(job.chunk))).is_ok();
        let latch = unsafe { &*job.latch };
        if !ok {
            latch.panicked.store(true, Ordering::SeqCst);
        }
        latch.complete_one();
    }
}

/// Runs `task(c)` for every chunk index `c` in `0..chunks`, using pool
/// workers when profitable and legal, the calling thread otherwise.
///
/// Chunks must be data-disjoint; the pool neither knows nor checks what they
/// touch. The call returns only after every chunk has finished, so `task` may
/// freely borrow from the caller's stack. If any chunk panics, `run` panics
/// after all chunks have settled (no use-after-free of caller state).
pub fn run(chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    if chunks == 0 {
        return;
    }
    if chunks == 1 || IN_PARALLEL.with(|flag| flag.get()) {
        for c in 0..chunks {
            task(c);
        }
        return;
    }

    let latch = Latch::new(chunks - 1);
    // SAFETY: lifetime erasure only — `run` blocks on the latch before
    // returning, so the borrow outlives every dereference on the workers.
    let erased = unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
            task,
        )
    };
    with_senders(chunks - 1, |senders| {
        for c in 1..chunks {
            senders[c - 1]
                .send(Job { task: erased, chunk: c, latch: &latch })
                .expect("pool worker disappeared");
        }
    });

    // The caller contributes chunk 0 itself; flag the thread so any nested
    // dispatch inside the task degrades to the serial path.
    IN_PARALLEL.with(|flag| flag.set(true));
    let own = catch_unwind(AssertUnwindSafe(|| task(0)));
    IN_PARALLEL.with(|flag| flag.set(false));
    latch.wait();
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    if latch.panicked.load(Ordering::SeqCst) {
        panic!("mamdr-tensor pool: a worker chunk panicked");
    }
}

/// Splits `0..n` into up to `configured_threads()` contiguous ranges of at
/// least `grain` items each and runs `f` on every range, in parallel when
/// more than one range results.
///
/// The partition depends only on `n`, `grain` and the thread count, and `f`
/// must produce the same result for an item regardless of which range carries
/// it — which every caller in this crate guarantees by making items (rows)
/// fully independent.
pub fn for_each_chunk(n: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    if n == 0 {
        return;
    }
    let chunks = (n / grain.max(1)).clamp(1, configured_threads());
    if chunks == 1 {
        f(0..n);
        return;
    }
    let base = n / chunks;
    let rem = n % chunks;
    run(chunks, &|c| {
        let start = c * base + c.min(rem);
        let len = base + usize::from(c < rem);
        f(start..start + len);
    });
}

/// Shares a raw mutable pointer across pool workers.
///
/// Callers must guarantee all concurrent writes through the pointer are to
/// disjoint regions; the type exists to make that contract explicit at the
/// few sites that need it.
pub struct SendMutPtr<T>(pub *mut T);

impl<T> SendMutPtr<T> {
    /// The wrapped pointer. Going through a method (rather than the field)
    /// makes closures capture the whole `Sync` wrapper, not the raw pointer.
    pub fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: disjointness of writes is the caller's contract (see type docs).
unsafe impl<T> Send for SendMutPtr<T> {}
// SAFETY: same — shared references only hand out the raw pointer.
unsafe impl<T> Sync for SendMutPtr<T> {}

/// Splits a row-major `rows × row_stride` buffer into contiguous row blocks
/// and runs `f(rows, block)` on each, in parallel when profitable.
///
/// Every row is written by exactly one worker, so the buffer contents cannot
/// depend on the thread count. `grain` is the minimum number of rows per
/// block (see [`for_each_chunk`]).
pub fn for_each_row_block(
    out: &mut [f32],
    row_stride: usize,
    grain: usize,
    f: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    if out.is_empty() || row_stride == 0 {
        return;
    }
    let n_rows = out.len() / row_stride;
    debug_assert_eq!(n_rows * row_stride, out.len(), "buffer is not a whole number of rows");
    let ptr = SendMutPtr(out.as_mut_ptr());
    for_each_chunk(n_rows, grain, |rows| {
        // SAFETY: row ranges from `for_each_chunk` are disjoint, so the
        // blocks they map to never overlap; the borrow of `out` outlives the
        // dispatch because `run` blocks until completion.
        let block = unsafe {
            std::slice::from_raw_parts_mut(
                ptr.get().add(rows.start * row_stride),
                rows.len() * row_stride,
            )
        };
        f(rows, block);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_covers_every_chunk_exactly_once() {
        let hits: Vec<AtomicU32> = (0..16).map(|_| AtomicU32::new(0)).collect();
        run(16, &|c| {
            hits[c].fetch_add(1, Ordering::SeqCst);
        });
        for (c, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "chunk {} ran a wrong number of times", c);
        }
    }

    #[test]
    fn for_each_chunk_partitions_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for grain in [1usize, 3, 64] {
                let seen: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
                for_each_chunk(n, grain, |range| {
                    for i in range {
                        seen[i].fetch_add(1, Ordering::SeqCst);
                    }
                });
                assert!(
                    seen.iter().all(|s| s.load(Ordering::SeqCst) == 1),
                    "n={} grain={} not a partition",
                    n,
                    grain
                );
            }
        }
    }

    #[test]
    fn row_blocks_tile_the_buffer() {
        let mut buf = vec![0.0f32; 13 * 5];
        for_each_row_block(&mut buf, 5, 1, |rows, block| {
            for (bi, i) in rows.enumerate() {
                for j in 0..5 {
                    block[bi * 5 + j] = (i * 5 + j) as f32;
                }
            }
        });
        let expect: Vec<f32> = (0..13 * 5).map(|x| x as f32).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn nested_dispatch_falls_back_to_serial() {
        let outer = AtomicU32::new(0);
        let inner = AtomicU32::new(0);
        run(4, &|_| {
            outer.fetch_add(1, Ordering::SeqCst);
            // A nested region must complete inline rather than deadlock.
            run(4, &|_| {
                inner.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(outer.load(Ordering::SeqCst), 4);
        assert_eq!(inner.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn worker_panic_propagates_to_dispatcher() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(8, &|c| {
                if c == 5 {
                    panic!("chunk 5 exploded");
                }
            });
        }));
        assert!(result.is_err(), "panic in a worker chunk must reach the caller");
        // The pool must remain usable after a panicked dispatch.
        let count = AtomicU32::new(0);
        run(8, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }
}
