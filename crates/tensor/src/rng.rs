//! Seeded random-number helpers.
//!
//! Every stochastic component in the workspace (initializers, dataset
//! generation, domain shuffling, negative sampling) draws from an explicitly
//! seeded [`rand::rngs::StdRng`], making whole experiment pipelines
//! bit-reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministically seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// SplitMix64 finalizer: decorrelates streams that share a parent seed, so a
/// dataset seed and a model-init seed derived from the same experiment seed do
/// not produce correlated draws.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A standard-normal sample via the Box–Muller transform.
///
/// Implemented in-house so the workspace does not need `rand_distr`.
pub fn normal(rng: &mut impl Rng) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Samples an index from an unnormalized weight vector.
///
/// Used by the dataset generator for popularity-skewed item sampling and by
/// Domain Regularization's domain sampling. Panics if weights sum to zero.
pub fn weighted_index(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index requires positive total weight");
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle of a slice, driven by the supplied RNG.
pub fn shuffle<T>(rng: &mut impl Rng, slice: &mut [T]) {
    if slice.is_empty() {
        return;
    }
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_decorrelates_streams() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // stable across calls
        assert_eq!(a, derive_seed(1, 0));
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded(11);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.05, "var {}", var);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(5);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(weighted_index(&mut rng, &weights), 2);
        }
        // roughly proportional sampling
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {}", frac);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded(17);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move elements");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_index_rejects_zero_total() {
        weighted_index(&mut seeded(1), &[0.0, 0.0]);
    }
}
