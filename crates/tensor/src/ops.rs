//! Linear-algebra and structural operations on [`Tensor`].
//!
//! These are the forward kernels the autodiff tape wraps. Matrix products
//! live in the [`crate::gemm`] module behind the unified [`Tensor::gemm`]
//! entry point; the legacy `matmul*` names below survive only as thin
//! wrappers for older call sites.

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self @ other` (`[m,k] @ [k,n] -> [m,n]`).
    ///
    /// Legacy wrapper: prefer `self.gemm(other, false, false)`.
    #[doc(hidden)]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.gemm(other, false, false)
    }

    /// `self @ otherᵀ` without materializing the transpose
    /// (`[m,k] @ [n,k]ᵀ -> [m,n]`).
    ///
    /// Legacy wrapper: prefer `self.gemm(other, false, true)`.
    #[doc(hidden)]
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        self.gemm(other, false, true)
    }

    /// `selfᵀ @ other` without materializing the transpose
    /// (`[k,m]ᵀ @ [k,n] -> [m,n]`).
    ///
    /// Legacy wrapper: prefer `self.gemm(other, true, false)`.
    #[doc(hidden)]
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        self.gemm(other, true, false)
    }

    /// Matrix transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = self.matrix_dims();
        let a = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec([n, m], out)
    }

    /// Adds a `[n]` (or `[1,n]`) row vector to every row of a `[m,n]` matrix.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        let (m, n) = self.matrix_dims();
        let rn = row.numel();
        assert_eq!(n, rn, "row broadcast width mismatch: {} vs {}", n, rn);
        let mut out = self.data().to_vec();
        let r = row.data();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] += r[j];
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Multiplies every row of a `[m,n]` matrix elementwise by a `[n]` vector.
    pub fn mul_row_broadcast(&self, row: &Tensor) -> Tensor {
        let (m, n) = self.matrix_dims();
        assert_eq!(n, row.numel(), "row broadcast width mismatch");
        let mut out = self.data().to_vec();
        let r = row.data();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] *= r[j];
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Multiplies row `i` of a `[m,n]` matrix by scalar `col[i]` (a `[m]` or
    /// `[m,1]` tensor).
    pub fn mul_col_broadcast(&self, col: &Tensor) -> Tensor {
        let (m, n) = self.matrix_dims();
        assert_eq!(m, col.numel(), "col broadcast height mismatch");
        let mut out = self.data().to_vec();
        let c = col.data();
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] *= c[i];
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Sums a `[m,n]` matrix over rows, producing `[n]`.
    pub fn sum_rows(&self) -> Tensor {
        let (m, n) = self.matrix_dims();
        let a = self.data();
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += a[i * n + j];
            }
        }
        Tensor::from_vec([n], out)
    }

    /// Sums a `[m,n]` matrix over columns, producing `[m]`.
    pub fn sum_cols(&self) -> Tensor {
        let (m, n) = self.matrix_dims();
        let a = self.data();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[i * n + j];
            }
            out[i] = acc;
        }
        Tensor::from_vec([m], out)
    }

    /// Row-wise softmax of a `[m,n]` matrix (numerically stabilized).
    pub fn softmax_rows(&self) -> Tensor {
        let (m, n) = self.matrix_dims();
        let a = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &a[i * n..(i + 1) * n];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for j in 0..n {
                let e = (row[j] - max).exp();
                out[i * n + j] = e;
                sum += e;
            }
            for j in 0..n {
                out[i * n + j] /= sum;
            }
        }
        Tensor::from_vec([m, n], out)
    }

    /// Concatenates matrices along the column axis: `[m,a] ++ [m,b] -> [m,a+b]`.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let m = parts[0].matrix_dims().0;
        let total: usize = parts.iter().map(|p| p.matrix_dims().1).sum();
        let mut out = vec![0.0f32; m * total];
        let mut col_off = 0usize;
        for p in parts {
            let (pm, pn) = p.matrix_dims();
            assert_eq!(pm, m, "concat_cols row count mismatch");
            let pd = p.data();
            for i in 0..m {
                out[i * total + col_off..i * total + col_off + pn]
                    .copy_from_slice(&pd[i * pn..(i + 1) * pn]);
            }
            col_off += pn;
        }
        Tensor::from_vec([m, total], out)
    }

    /// Extracts columns `[start, start+len)` of a `[m,n]` matrix.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        let (m, n) = self.matrix_dims();
        assert!(start + len <= n, "slice_cols out of bounds");
        let a = self.data();
        let mut out = vec![0.0f32; m * len];
        for i in 0..m {
            out[i * len..(i + 1) * len].copy_from_slice(&a[i * n + start..i * n + start + len]);
        }
        Tensor::from_vec([m, len], out)
    }

    /// Gathers rows of an embedding table: `table[[ids]] -> [ids.len, dim]`.
    pub fn gather_rows(&self, ids: &[u32]) -> Tensor {
        let (rows, dim) = self.matrix_dims();
        let a = self.data();
        let mut out = vec![0.0f32; ids.len() * dim];
        for (i, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < rows, "gather id {} out of bounds ({} rows)", id, rows);
            out[i * dim..(i + 1) * dim].copy_from_slice(&a[id * dim..(id + 1) * dim]);
        }
        Tensor::from_vec([ids.len(), dim], out)
    }

    /// Scatter-adds rows into `self`: for each i, `self[ids[i]] += src[i]`.
    ///
    /// This is the adjoint of [`Tensor::gather_rows`]; duplicate ids
    /// accumulate.
    pub fn scatter_add_rows(&mut self, ids: &[u32], src: &Tensor) {
        let (rows, dim) = self.matrix_dims();
        let (srows, sdim) = src.matrix_dims();
        assert_eq!(sdim, dim, "scatter dim mismatch");
        assert_eq!(srows, ids.len(), "scatter id count mismatch");
        let s = src.data().to_vec();
        let a = self.data_mut();
        for (i, &id) in ids.iter().enumerate() {
            let id = id as usize;
            assert!(id < rows, "scatter id {} out of bounds", id);
            for j in 0..dim {
                a[id * dim + j] += s[i * dim + j];
            }
        }
    }

    /// Broadcasting elementwise binary op under NumPy alignment rules.
    ///
    /// The general fallback used by the autodiff tape when neither operand
    /// dominates; specialized fast paths above should be preferred in hot
    /// code.
    pub fn broadcast_zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let out_shape = self.shape_obj().broadcast(other.shape_obj()).unwrap_or_else(|| {
            panic!("cannot broadcast {:?} with {:?}", self.shape_obj(), other.shape_obj())
        });
        let rank = out_shape.rank();
        let numel = out_shape.numel();
        let strides = out_shape.strides();
        let a_dims = pad_dims(self.shape_obj(), rank);
        let b_dims = pad_dims(other.shape_obj(), rank);
        let a_strides = padded_strides(&a_dims);
        let b_strides = padded_strides(&b_dims);
        let mut out = vec![0.0f32; numel];
        let a = self.data();
        let b = other.data();
        for (lin, o) in out.iter_mut().enumerate() {
            let mut ai = 0usize;
            let mut bi = 0usize;
            let mut rem = lin;
            for d in 0..rank {
                let idx = rem.checked_div(strides[d]).unwrap_or(0);
                rem %= strides[d].max(1);
                if a_dims[d] != 1 {
                    ai += idx * a_strides[d];
                }
                if b_dims[d] != 1 {
                    bi += idx * b_strides[d];
                }
            }
            *o = f(a[ai], b[bi]);
        }
        Tensor::from_vec(out_shape, out)
    }
}

fn pad_dims(shape: &Shape, rank: usize) -> Vec<usize> {
    let mut dims = vec![1usize; rank];
    let off = rank - shape.rank();
    dims[off..].copy_from_slice(shape.dims());
    dims
}

fn padded_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = seeded(1);
        let a = Tensor::randn(&mut rng, [5, 5], 0.0, 1.0);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            *eye.at_mut(i, i) = 1.0;
        }
        assert!(a.matmul(&eye).max_abs_diff(&a) < 1e-6);
        assert!(eye.matmul(&a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_variants_agree() {
        let mut rng = seeded(2);
        let a = Tensor::randn(&mut rng, [4, 6], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, [6, 3], 0.0, 1.0);
        let ref_out = a.matmul(&b);
        assert!(a.matmul_nt(&b.transpose()).max_abs_diff(&ref_out) < 1e-5);
        assert!(a.transpose().matmul_tn(&b).max_abs_diff(&ref_out) < 1e-5);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = seeded(3);
        let a = Tensor::randn(&mut rng, [3, 7], 0.0, 1.0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcasting_rows_and_cols() {
        let m = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let row = Tensor::from_vec([3], vec![10., 20., 30.]);
        assert_eq!(m.add_row_broadcast(&row).data(), &[11., 22., 33., 14., 25., 36.]);
        assert_eq!(m.mul_row_broadcast(&row).data(), &[10., 40., 90., 40., 100., 180.]);
        let col = Tensor::from_vec([2], vec![2., 3.]);
        assert_eq!(m.mul_col_broadcast(&col).data(), &[2., 4., 6., 12., 15., 18.]);
    }

    #[test]
    fn row_col_sums() {
        let m = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.sum_rows().data(), &[5., 7., 9.]);
        assert_eq!(m.sum_cols().data(), &[6., 15.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Tensor::from_vec([2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        let s = m.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // large inputs do not overflow thanks to max subtraction
        assert!(s.is_finite());
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec([2, 1], vec![9., 8.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1., 2., 9., 3., 4., 8.]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 1), b);
    }

    #[test]
    fn gather_scatter_adjoint() {
        let table = Tensor::from_vec([4, 2], vec![0., 1., 2., 3., 4., 5., 6., 7.]);
        let ids = [3u32, 0, 3];
        let g = table.gather_rows(&ids);
        assert_eq!(g.data(), &[6., 7., 0., 1., 6., 7.]);
        let mut grad = Tensor::zeros([4, 2]);
        grad.scatter_add_rows(&ids, &Tensor::ones([3, 2]));
        // duplicate id 3 accumulates twice
        assert_eq!(grad.data(), &[1., 1., 0., 0., 0., 0., 2., 2.]);
    }

    #[test]
    fn broadcast_zip_matches_specialized() {
        let mut rng = seeded(4);
        let m = Tensor::randn(&mut rng, [3, 4], 0.0, 1.0);
        let row = Tensor::randn(&mut rng, [4], 0.0, 1.0);
        let via_generic = m.broadcast_zip(&row, |a, b| a + b);
        assert!(via_generic.max_abs_diff(&m.add_row_broadcast(&row)) < 1e-6);
        let scalar = Tensor::scalar(2.5);
        let scaled = m.broadcast_zip(&scalar, |a, b| a * b);
        assert!(scaled.max_abs_diff(&m.scale(2.5)) < 1e-6);
    }
}
