//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Provides `crossbeam::thread::scope` on top of `std::thread::scope`,
//! matching the crossbeam-utils API shape the workspace uses: the scope
//! closure receives a `&Scope`, spawned closures receive the scope as an
//! argument, and `scope` returns a `Result` capturing child panics.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// The error type of [`scope`]: the payload of a panicked child.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` = panic
        /// payload).
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope, so children can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handoff = Scope { inner: self.inner };
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&handoff)) }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    ///
    /// Unlike `std::thread::scope`, child panics are captured and returned
    /// as `Err` rather than resumed — callers decide (the workspace
    /// `.unwrap()`s, preserving the original behavior).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_is_captured() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| -> () { panic!("child died") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
