//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API the workspace uses: the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), the
//! [`SeedableRng::seed_from_u64`] constructor, and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real crate's ChaCha12, but deterministic, well mixed,
//! and more than adequate for the workspace's simulation workloads.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types samplable uniformly from an RNG (the stand-in for sampling from
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is negligible at the
/// range sizes this workspace uses.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing RNG extension trait (rand 0.8 surface).
pub trait Rng: RngCore {
    /// A uniform sample of `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (rand 0.8 surface; only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// Not bit-compatible with crates.io `StdRng` (ChaCha12); see
    /// `vendor/README.md`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
        }
        assert!(seen_lo && seen_hi, "inclusive range should reach both ends");
    }

    #[test]
    fn mean_of_unit_samples_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
