//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range/tuple/`Just`
//! strategies, [`collection::vec`], `bool::ANY`, `prop_oneof!`, the
//! `proptest!` test-declaring macro, and the `prop_assert*` /
//! `prop_assume!` assertion macros.
//!
//! Differences from the real crate (documented, deliberate):
//! - **No shrinking.** A failing case panics with the failure message
//!   and the case number; inputs are reproducible because each test's
//!   RNG stream is derived deterministically from the test name.
//! - **Default case count is 64** (real default: 256) to keep the suite
//!   fast; tests that set `ProptestConfig::with_cases(n)` get exactly n.

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given (non-empty) options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` / `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod test_runner {
    //! The case-driving loop behind `proptest!`.

    use rand::SeedableRng;

    /// The RNG handed to strategies (the vendored `StdRng`).
    pub type TestRng = rand::rngs::StdRng;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs: draw a fresh case.
        Reject(String),
    }

    /// Runner configuration (`cases` is the only knob the workspace uses).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Rejections tolerated per accepted case before the test errors out.
    const REJECT_FACTOR: u32 = 20;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drives one property: repeatedly samples inputs and runs `case`
    /// until `config.cases` accepted cases pass. Panics on the first
    /// failure (no shrinking) or when rejections exceed the budget.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::seed_from_u64(fnv1a(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    let budget = config.cases.saturating_mul(REJECT_FACTOR);
                    assert!(
                        rejected <= budget,
                        "{name}: too many rejected cases ({rejected} rejects, \
                         {passed}/{} passed)",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case {passed}: {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case with a formatted message if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: both sides equal `{:?}`", left);
    }};
}

/// Rejects the current case (draw a fresh one) if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written in the block, as with
/// real proptest) that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                let __outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __outcome
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = crate::collection::vec((0usize..5, -1.0f32..1.0), 2..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            for (i, x) in &v {
                assert!(*i < 5);
                assert!((-1.0..1.0).contains(x));
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = prop_oneof![Just(0usize), Just(4usize)];
        let mut seen = [false; 2];
        for _ in 0..100 {
            match s.sample(&mut rng) {
                0 => seen[0] = true,
                4 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u32..10, (a, b) in (0u8..4, crate::bool::ANY)) {
            prop_assume!(x != 3);
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(a as u32 + x, x + a as u32);
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |__rng| -> Result<(), TestCaseError> {
                prop_assert!(false, "forced failure");
                Ok(())
            },
        );
    }
}
