//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace uses serde only as `#[derive(Serialize, Deserialize)]`
//! annotations on value types — no format crate is in the tree, so
//! nothing ever calls the traits. This stand-in supplies the trait
//! names (so `use serde::{Serialize, Deserialize}` resolves) and derive
//! macros that expand to nothing. Swapping the real crate back in is a
//! one-line Cargo.toml change; the annotations themselves are already
//! real-serde-compatible.

/// Marker stand-in for `serde::Serialize`. Never implemented here: the
/// derive expands to nothing and no serializer exists in the workspace.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
