//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Wraps the `std::sync` primitives behind parking_lot's non-poisoning
//! API: `lock`/`read`/`write` return guards directly. A poisoned inner
//! lock (a panic while holding the guard) panics on the next access,
//! which matches how the workspace treats lock poisoning: as a bug.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked `RwLock`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("RwLock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("RwLock poisoned")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("RwLock poisoned")
    }
}

/// A mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked `Mutex`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("Mutex poisoned")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("Mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
