//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Both derives expand to an empty token stream: the annotations stay
//! legal on workspace types without pulling in codegen machinery.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
