//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the workspace's `[[bench]] harness = false` targets compiling
//! and running offline. Instead of criterion's statistical machinery it
//! does a short warmup, times a fixed number of samples with
//! `std::time::Instant`, and prints mean ns/iter per benchmark — enough
//! to eyeball regressions, not a replacement for real criterion runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, f);
        self
    }
}

/// A named group sharing configuration (only `sample_size` here).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark; the closure receives `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds the label `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, accumulating into the sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total += start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Warmup pass, then scale iterations so one sample is not sub-tick.
    let mut probe = Bencher { total: Duration::ZERO, iters: 1 };
    f(&mut probe);
    let per_iter = probe.total.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut n = 0u64;
    for _ in 0..samples {
        let mut b = Bencher { total: Duration::ZERO, iters };
        f(&mut b);
        total += b.total;
        n += b.iters;
    }
    let ns = total.as_nanos() as f64 / n.max(1) as f64;
    println!("{name:<40} time: {ns:>12.1} ns/iter ({samples} samples x {iters} iters)");
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smoke() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
