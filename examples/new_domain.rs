//! The MDR-platform scenario of paper Fig. 2: a new domain joins the
//! system. The shared parameters θS stay frozen; the platform simply
//! allocates specific parameters θ_new and optimizes them with Domain
//! Regularization — no full retraining, no specialist involved.
//!
//! ```sh
//! cargo run --release --example new_domain
//! ```

use mamdr::core::env::{DomainParams, TrainEnv};
use mamdr::core::frameworks::mamdr::domain_regularization;
use mamdr::prelude::*;

fn main() {
    // The full platform: 10 domains. The first 9 are "existing"; D10 joins
    // later.
    let ds_full = taobao(10, 42, 0.3);
    let existing = {
        let mut ds = ds_full.clone();
        ds.domains.truncate(9);
        ds
    };
    let new_domain = ds_full.n_domains() - 1;
    println!(
        "platform has {} domains; '{}' joins with {} interactions",
        existing.n_domains(),
        ds_full.domains[new_domain].name,
        ds_full.domains[new_domain].len()
    );

    let model_cfg = ModelConfig::default();
    let fc = FeatureConfig::from_dataset(&ds_full);
    let mut cfg = TrainConfig::bench().with_epochs(8);
    cfg.outer_lr = 0.5;
    cfg.dr_lr = 0.5;
    cfg.dr_lookahead_batches = 8;

    // Phase 1: the platform trained θS on the existing domains with DN.
    // (The feature storage is global, so the model is built against the
    // full id space — exactly how the production system provisions it.)
    println!("\nphase 1: training shared parameters on the 9 existing domains (DN)...");
    let built = build_model(ModelKind::Mlp, &fc, &model_cfg, ds_full.n_domains(), cfg.seed);
    let mut env_existing =
        TrainEnv::new(&existing, built.model.as_ref(), built.params.clone(), cfg);
    let shared_model = FrameworkKind::Dn.build().train(&mut env_existing);

    // Phase 2: D10 arrives. Evaluate cold-start quality with θS alone.
    let mut env_full = TrainEnv::new(&ds_full, built.model.as_ref(), built.params.clone(), cfg);
    let cold = env_full.evaluate(&shared_model, Split::Test)[new_domain];
    println!("cold-start AUC on the new domain (shared params only): {:.4}", cold);

    // Phase 3: allocate θ_new = 0 and run a few rounds of Domain
    // Regularization for the new domain only.
    println!("\nphase 2: allocating specific parameters for the new domain and running DR...");
    let mut specific = vec![0.0f32; env_full.n_params()];
    for round in 0..cfg.epochs {
        domain_regularization(&mut env_full, &shared_model.shared, &mut specific, new_domain);
        let mut deltas = vec![vec![]; ds_full.n_domains()];
        for (d, slot) in deltas.iter_mut().enumerate() {
            *slot = if d == new_domain { specific.clone() } else { vec![0.0; specific.len()] };
        }
        let adapted = TrainedModel {
            shared: shared_model.shared.clone(),
            domains: DomainParams::Deltas(deltas),
        };
        let auc_now = env_full.evaluate(&adapted, Split::Test)[new_domain];
        println!("  DR round {}: new-domain AUC {:.4}", round + 1, auc_now);
    }

    println!(
        "\nThe new domain was onboarded by optimizing only its specific\n\
         parameters — the other {} domains' serving parameters never changed.",
        existing.n_domains()
    );
}
