//! Domain generalization — the paper's conclusion suggests DN extends
//! beyond MDR "to other problems such as ... domain generalization". This
//! example measures exactly that: train shared parameters on 9 of 10
//! domains and evaluate zero-shot on the held-out domain, comparing
//! Alternate training with Domain Negotiation.
//!
//! DN's theoretical edge (paper Eq. 18–21) is that it maximizes
//! cross-domain gradient inner products, i.e. it prefers updates that help
//! *all* domains — exactly the property that should transfer to a domain
//! it never saw.
//!
//! ```sh
//! cargo run --release --example generalization
//! ```

use mamdr::core::env::TrainEnv;
use mamdr::prelude::*;

fn main() {
    let ds_full = taobao(10, 42, 0.3);
    let model_cfg = ModelConfig::default();
    let fc = FeatureConfig::from_dataset(&ds_full);
    let mut cfg = TrainConfig::bench().with_epochs(12);
    cfg.outer_lr = 0.5;

    println!("leave-one-domain-out on {} ({} domains)\n", ds_full.name, ds_full.n_domains());
    println!("{:<10} {:>12} {:>12} {:>10}", "held out", "Alternate", "DN", "delta");

    let mut deltas = Vec::new();
    for held_out in [2usize, 5, 8] {
        // Training view: every domain except the held-out one.
        let mut train_ds = ds_full.clone();
        train_ds.domains.remove(held_out);

        let mut zero_shot = Vec::new();
        for fk in [FrameworkKind::Alternate, FrameworkKind::Dn] {
            let built = build_model(ModelKind::Mlp, &fc, &model_cfg, ds_full.n_domains(), cfg.seed);
            let mut env = TrainEnv::new(&train_ds, built.model.as_ref(), built.params.clone(), cfg);
            let trained = fk.build().train(&mut env);
            // Evaluate on the FULL dataset's held-out domain, unseen at
            // training time.
            let mut env_eval = TrainEnv::new(&ds_full, built.model.as_ref(), built.params, cfg);
            let auc = env_eval.evaluate(&trained, Split::Test)[held_out];
            zero_shot.push(auc);
        }
        let delta = zero_shot[1] - zero_shot[0];
        deltas.push(delta);
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>+10.4}",
            ds_full.domains[held_out].name, zero_shot[0], zero_shot[1], delta
        );
    }
    let mean_delta: f64 = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!(
        "\nmean zero-shot delta (DN − Alternate): {:+.4}\n\
         A positive delta supports the paper's domain-generalization claim:\n\
         DN's negotiated optimum transfers better to unseen domains than the\n\
         Alternate compromise point.",
        mean_delta
    );
}
