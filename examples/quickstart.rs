//! Quickstart: train an MLP under MAMDR on a Taobao-style benchmark and
//! compare it with plain Alternate training.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mamdr::prelude::*;

fn main() {
    // 1. A scaled-down Amazon-13 benchmark (see `mamdr_data::presets`) —
    //    the dataset the paper builds to stress sparse domains, where
    //    MAMDR's Domain Regularization has the most to offer.
    let ds = amazon13(42, 0.4);
    println!(
        "dataset: {} — {} domains, {} users, {} items",
        ds.name,
        ds.n_domains(),
        ds.n_users,
        ds.n_items
    );

    // 2. Shared hyper-parameters (paper §V-C, adapted to the scaled
    //    datasets — see EXPERIMENTS.md for the tuning sweep).
    let model_cfg = ModelConfig::default();
    let mut train_cfg = TrainConfig::bench().with_epochs(20);
    train_cfg.outer_lr = 0.5;
    train_cfg.dr_lr = 0.5;
    train_cfg.dr_lookahead_batches = 8;

    // 3. Train the same architecture under two frameworks.
    println!("\ntraining MLP under Alternate and MAMDR (takes a few minutes)...");
    let jobs = [(ModelKind::Mlp, FrameworkKind::Alternate), (ModelKind::Mlp, FrameworkKind::Mamdr)];
    let results: Vec<_> = run_many(&ds, &jobs, &model_cfg, train_cfg, 2)
        .into_iter()
        .map(|r| r.expect("training job panicked"))
        .collect();

    // 4. Report per-domain test AUC.
    println!("\n{:<28} {:>12} {:>16}", "domain", "Alternate", "MAMDR (DN+DR)");
    for d in 0..ds.n_domains() {
        println!(
            "{:<28} {:>12.4} {:>16.4}",
            ds.domains[d].name, results[0].domain_auc[d], results[1].domain_auc[d]
        );
    }
    println!("{:<28} {:>12.4} {:>16.4}", "MEAN", results[0].mean_auc, results[1].mean_auc);
    let lift = results[1].mean_auc - results[0].mean_auc;
    println!("\nMAMDR lift over Alternate: {:+.4} AUC", lift);
}
