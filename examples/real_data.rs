//! The real-data path: exports a synthetic benchmark to the interaction-log
//! format, loads it back through `mamdr_data::io` (exactly how a user with
//! the actual Amazon/Taobao logs would bring their data in), and trains a
//! model on the loaded dataset.
//!
//! ```sh
//! cargo run --release --example real_data
//! ```

use mamdr::data::io::{load_interactions, write_interactions};
use mamdr::prelude::*;

fn main() {
    // 1. Pretend this is your real click log by exporting a small synthetic
    //    dataset to the CSV-like interchange format.
    let source = taobao(10, 42, 0.05);
    let mut log = Vec::new();
    write_interactions(&source, &mut log).expect("in-memory write");
    println!(
        "exported {} interactions across {} domains ({} bytes of log)",
        source.split_len(Split::Train)
            + source.split_len(Split::Val)
            + source.split_len(Split::Test),
        source.n_domains(),
        log.len()
    );

    // 2. Load the log as a user with real data would. Ids are densified;
    //    split tags are honored.
    let ds = load_interactions(log.as_slice(), "my-click-log", 7).expect("valid log");
    println!(
        "loaded dataset: {} domains, {} users, {} items",
        ds.n_domains(),
        ds.n_users,
        ds.n_items
    );
    for d in ds.domains.iter().take(3) {
        println!(
            "  {}: {} train / {} val / {} test, observed CTR ratio {:.2}",
            d.name,
            d.train.len(),
            d.val.len(),
            d.test.len(),
            d.ctr_ratio
        );
    }

    // 3. Train MAMDR on the loaded data — the pipeline is identical to the
    //    synthetic presets.
    let mut cfg = TrainConfig::bench().with_epochs(8);
    cfg.outer_lr = 0.5;
    let r = run_experiment(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Mamdr, cfg);
    println!("\nMLP+MAMDR mean test AUC on the loaded log: {:.4}", r.mean_auc);
    println!("(swap the in-memory log for a file via mamdr::data::io::load_interactions_file)");
}
