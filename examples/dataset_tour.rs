//! A tour of the MDR benchmark datasets: regenerates the layout of paper
//! Tables I–IV for every preset at the default scale.
//!
//! ```sh
//! cargo run --release --example dataset_tour
//! ```

use mamdr::data::stats::{overall_table, per_domain_table, summarize};
use mamdr::prelude::*;

fn main() {
    let scale = 0.2; // keep the tour fast; presets default to 1.0
    let datasets = vec![
        amazon6(1, scale),
        amazon13(1, scale),
        taobao(10, 1, scale),
        taobao(20, 1, scale),
        taobao(30, 1, scale),
        industry(32, 1_500, 1),
    ];

    println!("=== Overall statistics (paper Table I layout) ===\n");
    let summaries: Vec<_> = datasets.iter().map(summarize).collect();
    println!("{}", overall_table(&summaries));

    for ds in &datasets {
        println!("=== Per-domain statistics: {} (paper Tables II–IV layout) ===\n", ds.name);
        println!("{}", per_domain_table(ds));
        // The invariants the generator guarantees:
        ds.validate();
    }

    println!("All datasets validated (ids in range, binary labels, CTR ratios as configured).");
}
