//! Demonstrates the domain-conflict phenomenon (paper §III-B, Fig. 3) and
//! Domain Negotiation's effect on it: pairwise gradient inner products are
//! measured at the initialization, after Alternate training, and after DN.
//!
//! ```sh
//! cargo run --release --example conflict_probe
//! ```

use mamdr::core::conflict::measure_conflict;
use mamdr::core::env::TrainEnv;
use mamdr::prelude::*;

fn main() {
    // A dataset with a strong conflict knob so the effect is visible.
    let mut gen = GeneratorConfig::base("conflict-demo", 400, 200, 11);
    gen.conflict = 0.8;
    gen.domains = (0..6).map(|i| DomainSpec::new(format!("D{}", i + 1), 2_000, 0.3)).collect();
    let ds = gen.generate();

    let model_cfg = ModelConfig::default();
    let fc = FeatureConfig::from_dataset(&ds);
    let cfg = TrainConfig::bench().with_epochs(5);

    println!("measuring pairwise gradient conflict across {} domains\n", ds.n_domains());
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "parameter point", "mean cosine", "conflict rate", "mean AUC"
    );

    // (a) Random initialization.
    let built = build_model(ModelKind::Mlp, &fc, &model_cfg, ds.n_domains(), cfg.seed);
    let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), cfg);
    let init = env.init_flat();
    let r = measure_conflict(&mut env, &init);
    let tm = TrainedModel::shared_only(init);
    let auc0 = mean(&env.evaluate(&tm, Split::Test));
    println!("{:<22} {:>14.4} {:>14.2} {:>12.4}", "init", r.mean_cosine, r.conflict_rate, auc0);

    // (b) After Alternate training (the compromise point of §III-B).
    for kind in [FrameworkKind::Alternate, FrameworkKind::Dn] {
        let built = build_model(ModelKind::Mlp, &fc, &model_cfg, ds.n_domains(), cfg.seed);
        let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params, cfg);
        let trained = kind.build().train(&mut env);
        let r = measure_conflict(&mut env, &trained.shared);
        let auc = mean(&env.evaluate(&trained, Split::Test));
        println!(
            "{:<22} {:>14.4} {:>14.2} {:>12.4}",
            format!("after {}", kind.name()),
            r.mean_cosine,
            r.conflict_rate,
            auc
        );
    }

    println!(
        "\nConflict (negative inner products) emerges as shared training converges;\n\
         DN reaches a point with better AUC by negotiating between domains rather\n\
         than settling at the compromise."
    );
}
