//! A tour of every learning framework in the registry: trains the same MLP
//! on the same small multi-domain dataset under all eleven frameworks and
//! prints the per-domain test AUC — a miniature of the paper's Table X row.
//!
//! ```sh
//! cargo run --release --example framework_tour
//! ```

use mamdr::prelude::*;

fn main() {
    // A compact three-domain dataset with one deliberately sparse domain,
    // so the overfitting-prone frameworks are visibly penalized.
    let mut gen = GeneratorConfig::base("tour", 300, 150, 5);
    gen.conflict = 0.35;
    gen.dense_dim = 4;
    gen.domains = vec![
        DomainSpec::new("rich", 4_000, 0.3),
        DomainSpec::new("mid", 1_500, 0.4),
        DomainSpec::new("sparse", 200, 0.25),
    ];
    let ds = gen.generate();

    let mut cfg = TrainConfig::bench().with_epochs(12);
    cfg.outer_lr = 0.5;
    cfg.dr_lr = 0.5;
    cfg.dr_lookahead_batches = 8;

    println!("{:<20} {:>8} {:>8} {:>8} {:>8}", "framework", "rich", "mid", "sparse", "MEAN");
    for fk in FrameworkKind::ALL {
        let r = run_experiment(&ds, ModelKind::Mlp, &ModelConfig::default(), fk, cfg);
        println!(
            "{:<20} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            fk.name(),
            r.domain_auc[0],
            r.domain_auc[1],
            r.domain_auc[2],
            r.mean_auc
        );
    }
    println!(
        "\nEvery row is the same architecture and the same data — only the\n\
         learning framework differs. This is the paper's model-agnosticism\n\
         claim in miniature (Table X)."
    );
}
