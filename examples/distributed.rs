//! The PS-Worker deployment of paper §IV-E: trains the embedding model on
//! a long-tailed "industry" dataset with and without the static/dynamic
//! embedding cache, reporting synchronization traffic and final quality.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```

use mamdr::prelude::*;

fn main() {
    let ds = industry(32, 2_000, 3);
    println!(
        "industry-style dataset: {} domains, {} users, {} items, {} train interactions",
        ds.n_domains(),
        ds.n_users,
        ds.n_items,
        ds.split_len(Split::Train)
    );

    println!("\nrunning 4 workers × 3 outer rounds under both sync protocols...\n");
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>10} {:>10}",
        "mode", "pulls", "pushes", "bytes moved", "hit rate", "test AUC"
    );
    for mode in [SyncMode::Cached, SyncMode::NoCache] {
        let cfg = DistributedConfig { mode, n_workers: 4, epochs: 3, ..Default::default() };
        let trainer = DistributedMamdr::new(&ds, cfg);
        let report = trainer.train(&ds);
        println!(
            "{:<10} {:>10} {:>10} {:>14} {:>10.2} {:>10.4}",
            match mode {
                SyncMode::Cached => "cached",
                SyncMode::NoCache => "no-cache",
            },
            report.pulls,
            report.pushes,
            report.total_bytes,
            report.cache.hit_ratio(),
            report.mean_auc,
        );
    }

    println!(
        "\nThe static/dynamic cache performs one pull per distinct row per round\n\
         and one delta push per touched row, instead of a round-trip per example —\n\
         the synchronization-overhead reduction of paper §IV-E."
    );
}
