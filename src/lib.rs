//! # mamdr
//!
//! A from-scratch Rust reproduction of **MAMDR: A Model Agnostic Learning
//! Framework for Multi-Domain Recommendation** (Luo et al., ICDE 2023).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense f32 tensor math.
//! * [`autodiff`] — reverse-mode autodiff tape.
//! * [`nn`] — parameter store, layers, optimizers.
//! * [`models`] — the ten CTR architectures of the paper's tables.
//! * [`data`] — synthetic MDR benchmark datasets (Amazon/Taobao presets).
//! * [`core`] — the MAMDR frameworks (DN, DR, MAMDR) and baselines,
//!   metrics and experiment orchestration.
//! * [`ps`] — the PS-Worker distributed-training simulation with the
//!   embedding static/dynamic cache.
//! * [`obs`] — unified telemetry: metrics registry, event log, observers.
//! * [`serve`] — online inference: frozen serving snapshots, per-domain
//!   routing, adaptive micro-batched scoring, replicated engines and hot
//!   model swap.
//! * [`load`] — trace-driven open-loop load generation: Zipf users and
//!   domains, diurnal Poisson arrivals, per-SLO-class overload accounting.
//! * [`rpc`] — the networked PS–worker runtime: checksummed TCP wire
//!   protocol, retrying clients, deterministic fault injection, and a
//!   loopback distributed trainer.
//!
//! ## Quickstart
//!
//! ```
//! use mamdr::prelude::*;
//!
//! // A small two-domain dataset, an MLP, and MAMDR training.
//! let mut gen = GeneratorConfig::base("demo", 60, 40, 7);
//! gen.domains = vec![DomainSpec::new("a", 300, 0.3), DomainSpec::new("b", 200, 0.4)];
//! let ds = gen.generate();
//! let result = run_experiment(
//!     &ds,
//!     ModelKind::Mlp,
//!     &ModelConfig::tiny(),
//!     FrameworkKind::Mamdr,
//!     TrainConfig::quick(),
//! );
//! assert_eq!(result.domain_auc.len(), 2);
//! ```

pub use mamdr_autodiff as autodiff;
pub use mamdr_core as core;
pub use mamdr_data as data;
pub use mamdr_load as load;
pub use mamdr_models as models;
pub use mamdr_nn as nn;
pub use mamdr_obs as obs;
pub use mamdr_ps as ps;
pub use mamdr_rpc as rpc;
pub use mamdr_serve as serve;
pub use mamdr_tensor as tensor;

/// The most common imports for experiments.
pub mod prelude {
    pub use mamdr_core::experiment::{run as run_experiment, run_many, RunResult};
    pub use mamdr_core::metrics::{auc, average_rank, logloss, mean};
    pub use mamdr_core::{Framework, FrameworkKind, TrainConfig, TrainEnv, TrainedModel};
    pub use mamdr_data::presets::{amazon13, amazon6, industry, taobao};
    pub use mamdr_data::{
        Batch, DomainData, DomainSpec, GeneratorConfig, Interaction, MdrDataset, Split,
    };
    pub use mamdr_models::{build_model, FeatureConfig, ModelConfig, ModelKind};
    pub use mamdr_nn::{Optimizer, OptimizerKind, ParamStore};
    pub use mamdr_obs::MetricsRegistry;
    pub use mamdr_ps::{DistributedConfig, DistributedMamdr, SyncMode};
    pub use mamdr_rpc::{DistributedTrainer, FaultPlan, LoopbackConfig};
    pub use mamdr_serve::{
        ModelSpec, ScoreRequest, ScoringEngine, ServeConfig, ServeResult, Server, ServingSnapshot,
    };
    pub use mamdr_tensor::{rng, Tensor};
}
