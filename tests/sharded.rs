//! Whole-system tests of the sharded parameter server: training against
//! N loopback shards must be bit-identical to the in-process trainer on
//! every report field, fault-free and faulted; a shard hard-killed
//! mid-schedule must be restarted from its last committed manifest files
//! and the round replayed without divergence; and a sharded checkpoint
//! must resume bit-identically at the same shard count *and* across a
//! topology change (4 shards committed, 2 shards resumed).

use mamdr::data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr::obs::MetricsRegistry;
use mamdr::ps::{checkpoint, DistributedConfig, DistributedMamdr};
use mamdr::rpc::{DistributedTrainer, FaultPlan, LoopbackConfig, RetryPolicy, TrainerError};
use std::path::PathBuf;
use std::sync::Arc;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("sharded", 80, 50, 55);
    cfg.domains = (0..6).map(|i| DomainSpec::new(format!("d{i}"), 300, 0.3)).collect();
    cfg.generate()
}

/// The in-process trainer must count pulls the way the sharded wire does
/// (per-shard sub-batches), so `route_shards` mirrors the shard count.
fn train_config(epochs: usize, route_shards: usize) -> DistributedConfig {
    DistributedConfig {
        n_workers: 2,
        epochs,
        sync_rounds: true,
        kernel_threads: 1,
        route_shards,
        ..Default::default()
    }
}

/// Byte-exact snapshot of a store (checkpoint::save sorts rows, so equal
/// parameters mean equal bytes).
fn snapshot_bytes(ps: &mamdr::ps::ParameterServer, dim: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    checkpoint::save(ps, dim, &mut buf).unwrap();
    buf
}

/// A fresh per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mamdr-sharded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fault_free_sharded_training_is_bit_identical_to_in_process() {
    let ds = dataset();
    for shards in [2usize, 4] {
        let cfg = train_config(3, shards);
        let local_trainer = DistributedMamdr::new(&ds, cfg);
        let local = local_trainer.train(&ds);

        let metrics = Arc::new(MetricsRegistry::new());
        let loopback = LoopbackConfig { shards, ..LoopbackConfig::new(cfg) };
        let mut net_trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
        let remote = net_trainer.train(&ds).unwrap();

        // Every report field matches exactly: sharding must be invisible
        // to the math *and* to the traffic accounting.
        assert_eq!(remote.mean_auc.to_bits(), local.mean_auc.to_bits(), "{shards} shards");
        assert_eq!(remote.round_losses, local.round_losses, "{shards} shards");
        assert_eq!(remote.pulls, local.pulls, "{shards} shards");
        assert_eq!(remote.pushes, local.pushes, "{shards} shards");
        assert_eq!(remote.total_bytes, local.total_bytes, "{shards} shards");
        assert_eq!(remote.cache, local.cache, "{shards} shards");
        assert_eq!(remote.max_staleness, 0);

        // The merged shard stores are byte-identical to the single store.
        let merged = net_trainer.merged_store();
        assert_eq!(
            snapshot_bytes(&merged, cfg.dim),
            snapshot_bytes(local_trainer.server(), cfg.dim),
            "{shards}-shard parameters diverged from in-process"
        );

        // Clean network, exactly-once pushes.
        assert_eq!(metrics.counter("rpc_retries_total").get(), 0);
        assert_eq!(metrics.counter("rpc_push_deduped_total").get(), 0);
        assert_eq!(metrics.counter("rpc_push_applied_total").get(), local.pushes);

        // Per-shard occupancy series exist and sum to the unlabeled total.
        let mut labeled_entries = 0.0;
        for s in 0..shards {
            let g = metrics.gauge(&format!("ps_kv_entries{{shard=\"{s}\"}}")).get();
            assert!(g > 0.0, "shard {s} of {shards} exported no ps_kv_entries series");
            labeled_entries += g;
        }
        assert_eq!(labeled_entries, metrics.gauge("ps_kv_entries").get());
        assert_eq!(labeled_entries, merged.n_rows() as f64);
        net_trainer.shutdown();
    }
}

#[test]
fn faulted_sharded_training_applies_every_update_exactly_once() {
    let ds = dataset();
    let cfg = train_config(3, 2);

    let local_trainer = DistributedMamdr::new(&ds, cfg);
    let local = local_trainer.train(&ds);

    // The same chaos the single-server faulted test injects, spread over
    // two shards (each server draws its own decorrelated fault stream).
    let plan = FaultPlan::parse(
        "seed=11,drop_send=0.05,drop_recv=0.1,delay=0.05:100,dup=0.4,disconnect=3",
    )
    .unwrap();
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig {
        shards: 2,
        fault: Some(plan),
        retry: RetryPolicy { base_backoff_micros: 20, ..Default::default() },
        ..LoopbackConfig::new(cfg)
    };
    let mut net_trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
    let remote = net_trainer.train(&ds).unwrap();

    // The learning signal is exactly the clean run's; retried reads make
    // pull traffic incomparable, but pushes are exactly-once.
    assert_eq!(remote.round_losses.len(), cfg.epochs);
    assert_eq!(remote.round_losses, local.round_losses);
    assert_eq!(remote.mean_auc.to_bits(), local.mean_auc.to_bits());
    assert_eq!(remote.pushes, local.pushes);
    assert_eq!(
        snapshot_bytes(&net_trainer.merged_store(), cfg.dim),
        snapshot_bytes(local_trainer.server(), cfg.dim),
        "faults lost or double-applied at least one update on some shard"
    );
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), local.pushes);

    // The chaos actually happened and was counted.
    assert!(metrics.counter("rpc_retries_total").get() > 0);
    assert!(metrics.counter("rpc_faults_dropped_total").get() > 0);
    assert!(metrics.counter("rpc_push_deduped_total").get() > 0);
    net_trainer.shutdown();
}

#[test]
fn a_killed_shard_is_restarted_from_the_manifest_and_the_round_replays_bit_identically() {
    let ds = dataset();
    let cfg = train_config(3, 2);
    let dir = scratch_dir("shard-kill");

    let local_trainer = DistributedMamdr::new(&ds, cfg);
    let local = local_trainer.train(&ds);

    // Shard 1 is torn down at the top of round 1. The doomed attempt fails
    // once worker retries exhaust, nothing is applied, and the supervisor
    // reseeds the shard from the round-1 manifest and replays the round.
    let plan = FaultPlan::parse("kill_shard=1:1").unwrap();
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig {
        shards: 2,
        fault: Some(plan),
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        max_worker_retries: 0,
        retry: RetryPolicy { base_backoff_micros: 20, ..Default::default() },
        ..LoopbackConfig::new(cfg)
    };
    let mut trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
    let report = trainer.train(&ds).unwrap();

    assert_eq!(metrics.counter("rpc_faults_shard_kills_total").get(), 1);
    assert_eq!(metrics.counter("rpc_shard_restarts_total").get(), 1);

    // Zero divergence: the replayed round is indistinguishable from an
    // undisturbed one. (Pull traffic is not compared — the doomed
    // attempt's reads against the surviving shard are real wire traffic.)
    assert_eq!(report.round_losses, local.round_losses);
    assert_eq!(report.mean_auc.to_bits(), local.mean_auc.to_bits());
    assert_eq!(report.pushes, local.pushes);
    assert_eq!(report.max_staleness, 0);
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), local.pushes);
    assert_eq!(
        snapshot_bytes(&trainer.merged_store(), cfg.dim),
        snapshot_bytes(local_trainer.server(), cfg.dim),
        "shard recovery changed the parameters"
    );
    trainer.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_resume_is_bit_identical_at_the_same_shard_count() {
    let ds = dataset();
    let full = train_config(4, 2);
    let dir = scratch_dir("resume-2to2");

    // Ground truth: one uninterrupted 2-shard run, no journaling at all.
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig { shards: 2, ..LoopbackConfig::new(full) };
    let mut uninterrupted = DistributedTrainer::new(&ds, loopback, metrics).unwrap();
    let expected = uninterrupted.train(&ds).unwrap();
    let expected_bytes = snapshot_bytes(&uninterrupted.merged_store(), full.dim);
    uninterrupted.shutdown();

    // The "crashed" driver commits a manifest at round 0 (seed state) and
    // each boundary, then stops after round 2.
    let crashed_cfg = LoopbackConfig {
        shards: 2,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..LoopbackConfig::new(train_config(2, 2))
    };
    let metrics = Arc::new(MetricsRegistry::new());
    let mut crashed = DistributedTrainer::new(&ds, crashed_cfg, Arc::clone(&metrics)).unwrap();
    crashed.train(&ds).unwrap();
    crashed.shutdown();
    assert_eq!(metrics.counter("rpc_manifest_writes_total").get(), 3);

    // The restarted driver resumes at round 2 and finishes the schedule.
    let resumed_cfg = LoopbackConfig {
        shards: 2,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        resume: true,
        ..LoopbackConfig::new(full)
    };
    let metrics = Arc::new(MetricsRegistry::new());
    let mut resumed = DistributedTrainer::new(&ds, resumed_cfg, metrics).unwrap();
    assert_eq!(resumed.start_epoch(), 2, "resume should pick up the newest manifest");
    let report = resumed.train(&ds).unwrap();

    // Bit-identity in the parameters and every report aggregate: the
    // interruption is invisible, traffic counters included.
    assert_eq!(report.round_losses, expected.round_losses);
    assert_eq!(report.mean_auc.to_bits(), expected.mean_auc.to_bits());
    assert_eq!(report.pulls, expected.pulls);
    assert_eq!(report.pushes, expected.pushes);
    assert_eq!(report.total_bytes, expected.total_bytes);
    assert_eq!(report.cache, expected.cache);
    assert_eq!(
        snapshot_bytes(&resumed.merged_store(), full.dim),
        expected_bytes,
        "sharded resume diverged from the uninterrupted run"
    );
    resumed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_four_shard_checkpoint_resumes_as_two_shards_bit_identically() {
    let ds = dataset();
    let dir = scratch_dir("resume-4to2");

    // Ground truth: an uninterrupted 2-shard run.
    let full = train_config(4, 2);
    let loopback = LoopbackConfig { shards: 2, ..LoopbackConfig::new(full) };
    let mut uninterrupted =
        DistributedTrainer::new(&ds, loopback, Arc::new(MetricsRegistry::new())).unwrap();
    let expected = uninterrupted.train(&ds).unwrap();
    let expected_bytes = snapshot_bytes(&uninterrupted.merged_store(), full.dim);
    uninterrupted.shutdown();

    // Two rounds on FOUR shards, then the cluster shrinks: the resumed
    // driver merges the 4-shard manifest files and re-routes every row
    // through the 2-shard map.
    let crashed_cfg = LoopbackConfig {
        shards: 4,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..LoopbackConfig::new(train_config(2, 4))
    };
    let mut crashed =
        DistributedTrainer::new(&ds, crashed_cfg, Arc::new(MetricsRegistry::new())).unwrap();
    crashed.train(&ds).unwrap();
    crashed.shutdown();

    let resumed_cfg = LoopbackConfig {
        shards: 2,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        resume: true,
        ..LoopbackConfig::new(full)
    };
    let mut resumed =
        DistributedTrainer::new(&ds, resumed_cfg, Arc::new(MetricsRegistry::new())).unwrap();
    assert_eq!(resumed.start_epoch(), 2);
    assert_eq!(resumed.shard_map().n_shards(), 2);
    let report = resumed.train(&ds).unwrap();

    // The math and the per-key push traffic are topology-independent;
    // pull-chunk counts are not (4 shards split a batch into more
    // sub-requests), so pulls/total_bytes are not compared across the
    // topology change.
    assert_eq!(report.round_losses, expected.round_losses);
    assert_eq!(report.mean_auc.to_bits(), expected.mean_auc.to_bits());
    assert_eq!(report.pushes, expected.pushes);
    assert_eq!(
        snapshot_bytes(&resumed.merged_store(), full.dim),
        expected_bytes,
        "rehashed resume diverged from the uninterrupted 2-shard run"
    );
    resumed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_kill_schedules_are_validated_up_front() {
    let ds = dataset();
    let plan = FaultPlan::parse("kill_shard=1:1").unwrap();

    // A shard-kill schedule needs at least two shards...
    let cfg =
        LoopbackConfig { fault: Some(plan.clone()), ..LoopbackConfig::new(train_config(2, 1)) };
    assert!(matches!(
        DistributedTrainer::new(&ds, cfg, Arc::new(MetricsRegistry::new())),
        Err(TrainerError::Config(_))
    ));

    // ...and per-round manifests to recover from.
    let cfg =
        LoopbackConfig { shards: 2, fault: Some(plan), ..LoopbackConfig::new(train_config(2, 2)) };
    assert!(matches!(
        DistributedTrainer::new(&ds, cfg, Arc::new(MetricsRegistry::new())),
        Err(TrainerError::Config(_))
    ));
}
