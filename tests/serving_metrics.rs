//! Serving-side metric integration: GAUC / NDCG over a trained model's
//! per-user score lists.

use mamdr::core::ranking::{gauc, mean_ndcg_at_k, UserScore};
use mamdr::prelude::*;

#[test]
fn trained_model_has_better_serving_metrics_than_random() {
    let mut gen = GeneratorConfig::base("serve", 120, 60, 3);
    gen.conflict = 0.3;
    gen.domains = vec![DomainSpec::new("a", 1_200, 0.3)];
    let ds = gen.generate();

    let mut cfg = TrainConfig::quick();
    cfg.epochs = 10;
    let fc = FeatureConfig::from_dataset(&ds);
    let built = build_model(ModelKind::Mlp, &fc, &ModelConfig::tiny(), 1, 5);
    let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params.clone(), cfg);
    let trained = FrameworkKind::Alternate.build().train(&mut env);

    // Score the test split with trained and with random-init parameters.
    let score_with = |flat: &[f32]| -> Vec<UserScore> {
        let mut params = built.params.clone();
        params.load_flat(flat);
        let interactions = ds.domains[0].split(Split::Test);
        let batch = mamdr::data::make_batch(&ds, 0, interactions);
        let logits = mamdr::models::eval_logits(built.model.as_ref(), &params, &batch);
        interactions
            .iter()
            .zip(&logits)
            .map(|(it, &s)| UserScore { user: it.user, label: it.label, score: s })
            .collect()
    };
    let init = env.init_flat();
    let random_scores = score_with(&init);
    let trained_scores = score_with(&trained.shared);

    let g_rand = gauc(&random_scores);
    let g_trained = gauc(&trained_scores);
    assert!(g_trained > g_rand + 0.03, "training should lift GAUC: {} -> {}", g_rand, g_trained);

    let n_trained = mean_ndcg_at_k(&trained_scores, 5);
    assert!((0.0..=1.0).contains(&n_trained));
}
