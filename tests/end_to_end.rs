//! Cross-crate integration tests: the full pipeline from dataset
//! generation through training to evaluation.

use mamdr::prelude::*;

fn small_dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("it", 100, 60, 21);
    cfg.conflict = 0.3;
    cfg.dense_dim = 4;
    cfg.domains = vec![
        DomainSpec::new("rich", 900, 0.3),
        DomainSpec::new("mid", 500, 0.4),
        DomainSpec::new("sparse", 80, 0.25),
    ];
    cfg.generate()
}

#[test]
fn every_framework_completes_and_scores() {
    let ds = small_dataset();
    let cfg = TrainConfig::quick();
    for fk in FrameworkKind::ALL {
        let r = run_experiment(&ds, ModelKind::Mlp, &ModelConfig::tiny(), fk, cfg);
        assert_eq!(r.domain_auc.len(), 3, "{}", fk.name());
        assert!(
            r.domain_auc.iter().all(|a| a.is_finite() && (0.0..=1.0).contains(a)),
            "{} produced invalid AUC {:?}",
            fk.name(),
            r.domain_auc
        );
    }
}

#[test]
fn mamdr_beats_chance_end_to_end() {
    let ds = small_dataset();
    let mut cfg = TrainConfig::quick();
    cfg.epochs = 8;
    let r = run_experiment(&ds, ModelKind::Mlp, &ModelConfig::tiny(), FrameworkKind::Mamdr, cfg);
    // Judge only the domains with enough test data for AUC to be stable:
    // the "sparse" domain has ~16 test interactions and is pure noise.
    let stable = (r.domain_auc[0] + r.domain_auc[1]) / 2.0;
    assert!(stable > 0.55, "MAMDR AUC on data-rich domains {}", stable);
}

#[test]
fn whole_pipeline_is_reproducible() {
    let ds = small_dataset();
    let cfg = TrainConfig::quick();
    let a = run_experiment(&ds, ModelKind::DeepFm, &ModelConfig::tiny(), FrameworkKind::Mamdr, cfg);
    let b = run_experiment(&ds, ModelKind::DeepFm, &ModelConfig::tiny(), FrameworkKind::Mamdr, cfg);
    assert_eq!(a.domain_auc, b.domain_auc);
}

#[test]
fn seeds_change_outcomes() {
    let ds = small_dataset();
    let a = run_experiment(
        &ds,
        ModelKind::Mlp,
        &ModelConfig::tiny(),
        FrameworkKind::Alternate,
        TrainConfig::quick().with_seed(1),
    );
    let b = run_experiment(
        &ds,
        ModelKind::Mlp,
        &ModelConfig::tiny(),
        FrameworkKind::Alternate,
        TrainConfig::quick().with_seed(2),
    );
    assert_ne!(a.domain_auc, b.domain_auc);
}

#[test]
fn presets_feed_training_directly() {
    // The public presets must be directly consumable by the trainer.
    let ds = taobao(10, 5, 0.05);
    let r = run_experiment(
        &ds,
        ModelKind::Mlp,
        &ModelConfig::tiny(),
        FrameworkKind::Alternate,
        TrainConfig::quick(),
    );
    assert_eq!(r.domain_auc.len(), 10);
}

#[test]
fn distributed_and_local_agree_on_dataset_semantics() {
    // The PS-Worker path consumes the same dataset type; its evaluation
    // must be meaningful on presets too.
    // 3k head samples: below ~2k the preset's 8k users x 3k items leave
    // embeddings with <1 update each and no model generalizes from it.
    let ds = industry(8, 3_000, 9);
    // One worker: multi-worker runs interleave nondeterministically, and
    // this test asserts a strict improvement.
    let cfg = DistributedConfig { epochs: 5, n_workers: 1, ..Default::default() };
    let trainer = DistributedMamdr::new(&ds, cfg);
    let before = trainer.evaluate(&ds, Split::Test);
    let report = trainer.train(&ds);
    assert!(report.mean_auc > before, "{} -> {}", before, report.mean_auc);
}
