//! Replicated serving integration: an N-replica pool swapped mid-run must
//! answer every request from exactly one published snapshot version, drop
//! nothing, and produce scores bit-identical to a single-replica run — and
//! to scoring the snapshot directly — under the same deterministic
//! user-id routing.

use mamdr::prelude::*;
use mamdr::serve::{
    replica_of, ModelSpec, ReplicatedServer, ScoreRequest, ServeResult, SloClass, SubmitError,
};
use std::collections::HashMap;
use std::sync::Arc;

fn dataset() -> MdrDataset {
    let mut gen = GeneratorConfig::base("replica-e2e", 80, 50, 17);
    gen.conflict = 0.3;
    gen.domains = vec![DomainSpec::new("a", 600, 0.3), DomainSpec::new("b", 300, 0.4)];
    gen.generate()
}

fn trained_pair(ds: &MdrDataset, seed: u64) -> (ModelSpec, TrainedModel) {
    let fc = FeatureConfig::from_dataset(ds);
    let mc = ModelConfig::tiny();
    let built = build_model(ModelKind::Mlp, &fc, &mc, ds.n_domains(), seed);
    let cfg = TrainConfig::quick().with_seed(seed);
    let mut env = TrainEnv::new(ds, built.model.as_ref(), built.params, cfg);
    let trained = FrameworkKind::Mamdr.build().train(&mut env);
    let spec =
        ModelSpec { kind: ModelKind::Mlp, features: fc, config: mc, n_domains: ds.n_domains() };
    (spec, trained)
}

fn requests(fc: &FeatureConfig, n: u32) -> Vec<ScoreRequest> {
    (0..n)
        .map(|i| {
            ScoreRequest::new(
                (i as usize) % 2,
                (i * 7) % fc.n_users as u32,
                (i * 3) % fc.n_items as u32,
                i % fc.n_user_groups as u32,
                i % fc.n_item_cats as u32,
            )
        })
        .collect()
}

/// Runs `reqs` through a fresh pool of `n_replicas`, publishing v2 after
/// the first `swap_after` submissions — with the second quarter of those
/// still in flight when the swap lands. Returns `(version, score_bits)`
/// per request, in submission order.
fn run_pool(
    n_replicas: usize,
    swap_after: usize,
    spec: &ModelSpec,
    tm1: &TrainedModel,
    tm2: &TrainedModel,
    reqs: &[ScoreRequest],
) -> Vec<(u64, u32)> {
    let v1 = ServingSnapshot::from_trained(1, spec.clone(), tm1.clone()).unwrap();
    let v2 = ServingSnapshot::from_trained(2, spec.clone(), tm2.clone()).unwrap();
    let registry = MetricsRegistry::new();
    let pool = ReplicatedServer::start(v1, n_replicas, ServeConfig::default(), &registry, None);

    let resolve = |p: &mamdr::serve::Pending| match p.wait() {
        ServeResult::Scored(r) => (r.snapshot_version, r.score.to_bits()),
        other => panic!("request dropped or failed: {other:?}"),
    };
    let submit =
        |r: &ScoreRequest| pool.submit(r.clone(), None).expect("pool admits under capacity");

    // Submit the pre-swap half; resolve the first half of it *before* the
    // swap (pinning those results to v1), leave the rest in flight.
    let pre: Vec<_> = reqs[..swap_after].iter().map(submit).collect();
    let mut results: Vec<(u64, u32)> = pre[..swap_after / 2].iter().map(resolve).collect();
    assert_eq!(pool.publish(v2), 1, "swap must retire exactly version 1");
    // In-flight requests finish on whichever version their batch pinned.
    results.extend(pre[swap_after / 2..].iter().map(resolve));
    // Everything submitted after the swap can only ever see v2.
    let post: Vec<_> = reqs[swap_after..].iter().map(submit).collect();
    results.extend(post.iter().map(resolve));
    pool.shutdown();

    // Zero loss, server-side view: every admitted request responded.
    assert_eq!(registry.counter("serve_requests_total").get(), reqs.len() as u64);
    assert_eq!(registry.counter("serve_responses_total").get(), reqs.len() as u64);
    results
}

#[test]
fn replicated_pool_swaps_with_zero_loss_and_bit_identical_scores() {
    let ds = dataset();
    let (spec, tm1) = trained_pair(&ds, 3);
    let (_, tm2) = trained_pair(&ds, 11);
    let fc = spec.features;
    let reqs = requests(&fc, 120);
    let swap_after = reqs.len() / 2;

    // The request set must actually exercise multiple replicas.
    let owners: std::collections::HashSet<usize> =
        reqs.iter().map(|r| replica_of(r.user, 4)).collect();
    assert!(owners.len() > 1, "fixture routes everything to one replica");

    // Reference scores, straight off each snapshot — no server, no
    // batching, no replication.
    let direct: HashMap<u64, Vec<u32>> = [(1u64, &tm1), (2u64, &tm2)]
        .into_iter()
        .map(|(version, tm)| {
            let snap = ServingSnapshot::from_trained(version, spec.clone(), (*tm).clone()).unwrap();
            let bits = reqs
                .iter()
                .map(|r| snap.score(r.domain, std::slice::from_ref(r))[0].to_bits())
                .collect();
            (version, bits)
        })
        .collect();

    let four = run_pool(4, swap_after, &spec, &tm1, &tm2, &reqs);
    let one = run_pool(1, swap_after, &spec, &tm1, &tm2, &reqs);

    for (i, &(version, bits)) in four.iter().enumerate() {
        // Exactly one published version answered each request...
        assert!(version == 1 || version == 2, "request {i} scored by unknown v{version}");
        // ...and its score is bit-identical to that snapshot scored
        // directly, so neither replication nor batching changed a bit.
        assert_eq!(
            bits, direct[&version][i],
            "request {i}: 4-replica score diverged from direct v{version} scoring"
        );
    }
    for (i, &(version, bits)) in one.iter().enumerate() {
        assert_eq!(
            bits, direct[&version][i],
            "request {i}: 1-replica score diverged from direct v{version} scoring"
        );
    }

    // Results resolved before the swap are all v1; submissions after the
    // swap can only score on v2 — on every pool size.
    for results in [&four, &one] {
        for (i, &(version, _)) in results[..swap_after / 2].iter().enumerate() {
            assert_eq!(version, 1, "request {i} resolved pre-swap but scored on v{version}");
        }
        for (i, &(version, _)) in results.iter().enumerate().skip(swap_after) {
            assert_eq!(version, 2, "request {i} submitted after the swap scored on v{version}");
        }
    }

    // Where both runs answered a request with the same version, the bits
    // agree — replica count never changes a score.
    let mut compared = 0;
    for i in 0..reqs.len() {
        if four[i].0 == one[i].0 {
            assert_eq!(four[i].1, one[i].1, "request {i}: replica count changed the score");
            compared += 1;
        }
    }
    assert!(compared > reqs.len() / 2, "too few comparable requests ({compared})");
}

/// What one submitter thread observed, client side.
#[derive(Default)]
struct ClientTally {
    submitted: u64,
    admitted: u64,
    shed: [u64; SloClass::COUNT],
    rejected: u64,
    closed: u64,
    scored: u64,
    other: u64,
    versions: std::collections::BTreeSet<u64>,
}

/// A version swap racing per-class shed under sustained overload must not
/// lose a single submission from the accounting: client-side,
/// `submitted = admitted + shed + rejected + closed` per class by
/// construction, and every one of those outcomes must land in exactly one
/// server-side counter — across the publish, with the bulk class
/// shedding the whole time.
#[test]
fn publish_racing_shed_conserves_every_submission() {
    let ds = dataset();
    let (spec, tm1) = trained_pair(&ds, 3);
    let (_, tm2) = trained_pair(&ds, 11);
    let fc = spec.features;
    let v1 = ServingSnapshot::from_trained(1, spec.clone(), tm1).unwrap();
    let v2 = Arc::new(ServingSnapshot::from_trained(2, spec, tm2).unwrap());

    // A deliberately starved pool: one slow-flushing worker per replica
    // and a bulk cap of 2, so bulk traffic sheds almost immediately while
    // interactive traffic keeps landing under the global cap.
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_us: 2_000,
        queue_cap: 64,
        class_caps: {
            let mut c = [0; SloClass::COUNT];
            c[SloClass::Bulk.index()] = 2;
            c
        },
        n_workers: 1,
        ..ServeConfig::default()
    };
    let registry = MetricsRegistry::new();
    let pool = Arc::new(ReplicatedServer::start(v1, 2, cfg, &registry, None));

    // Pin a few v1 responses before the storm so both versions provably
    // answered traffic in this run.
    let warmup = requests(&fc, 4);
    for r in &warmup {
        match pool.submit(r.clone(), None).unwrap().wait() {
            ServeResult::Scored(resp) => assert_eq!(resp.snapshot_version, 1),
            other => panic!("warmup request failed: {other:?}"),
        }
    }

    let reqs = requests(&fc, 64);
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let pool = Arc::clone(&pool);
            let reqs = reqs.clone();
            std::thread::spawn(move || {
                let mut tally = ClientTally::default();
                for i in 0..400usize {
                    let class =
                        if (t + i) % 3 == 0 { SloClass::Interactive } else { SloClass::Bulk };
                    let req = reqs[(t * 31 + i) % reqs.len()].clone();
                    tally.submitted += 1;
                    match pool.submit_class(req, None, class) {
                        Ok(pending) => {
                            tally.admitted += 1;
                            match pending.wait() {
                                ServeResult::Scored(r) => {
                                    tally.scored += 1;
                                    tally.versions.insert(r.snapshot_version);
                                }
                                _ => tally.other += 1,
                            }
                        }
                        Err(SubmitError::ShedOverload(c)) => tally.shed[c.index()] += 1,
                        Err(SubmitError::QueueFull) => tally.rejected += 1,
                        Err(SubmitError::Closed) => tally.closed += 1,
                    }
                }
                tally
            })
        })
        .collect();

    // Land the swap squarely inside the overload window.
    std::thread::sleep(std::time::Duration::from_millis(3));
    assert_eq!(pool.publish_arc(Arc::clone(&v2)), 1, "swap must retire exactly version 1");

    let mut total = ClientTally::default();
    for w in workers {
        let t = w.join().unwrap();
        total.submitted += t.submitted;
        total.admitted += t.admitted;
        for c in 0..SloClass::COUNT {
            total.shed[c] += t.shed[c];
        }
        total.rejected += t.rejected;
        total.closed += t.closed;
        total.scored += t.scored;
        total.other += t.other;
        total.versions.extend(t.versions);
    }
    Arc::try_unwrap(pool).ok().expect("pool unshared after joins").shutdown();

    // The storm must actually have raced the swap: bulk shed fired, and
    // traffic scored on both the retired and the new version.
    assert!(total.shed[SloClass::Bulk.index()] > 0, "bulk class never shed — no overload");
    assert!(total.versions.contains(&2), "no request ever saw the published version");
    assert!(total.versions.iter().all(|v| [1, 2].contains(v)), "unknown version served");

    // Client-side conservation: every submission took exactly one exit.
    let shed_total: u64 = total.shed.iter().sum();
    assert_eq!(
        total.submitted,
        total.admitted + shed_total + total.rejected + total.closed,
        "a submission fell out of the accounting"
    );
    assert_eq!(total.closed, 0, "pool reported Closed while still running");
    // Every admitted request resolved (no deadline was set, so all score).
    assert_eq!(total.scored + total.other, total.admitted);
    assert_eq!(total.other, 0, "an admitted request with no deadline failed to score");

    // Server-side counters agree exactly with the client tallies — the
    // swap neither double-counted nor dropped an admission, a shed, or a
    // rejection in any class.
    let warm = warmup.len() as u64;
    assert_eq!(registry.counter("serve_requests_total").get(), total.admitted + warm);
    assert_eq!(registry.counter("serve_responses_total").get(), total.scored + warm);
    assert_eq!(registry.counter("serve_rejected_total").get(), total.rejected);
    for class in SloClass::ALL {
        assert_eq!(
            registry.counter(&format!("serve_shed_total{{class=\"{}\"}}", class.label())).get(),
            total.shed[class.index()],
            "shed counter for class {} diverged from client observations",
            class.label()
        );
    }
}
