//! Tracing contract tests: attaching a tracer must never change a result
//! (neutrality), and the spans it records must form the documented
//! cross-layer structure — worker-side logical RPC spans parenting
//! server-side handling spans across the wire, retries grouped as attempt
//! children under one logical span, and serve requests leaving complete
//! lifecycle chains.

use mamdr::data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr::obs::{MetricsRegistry, SpanRecord, Tracer};
use mamdr::ps::{checkpoint, DistributedConfig, DistributedMamdr};
use mamdr::rpc::{DistributedTrainer, FaultPlan, LoopbackConfig, RetryPolicy};
use mamdr::serve::{ScoreRequest, ScoringEngine, ServeConfig, ServeResult, Server};
use std::collections::HashMap;
use std::sync::Arc;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("tracing", 60, 40, 23);
    cfg.domains = (0..4).map(|i| DomainSpec::new(format!("d{i}"), 200, 0.3)).collect();
    cfg.generate()
}

fn train_config() -> DistributedConfig {
    DistributedConfig {
        n_workers: 2,
        epochs: 2,
        sync_rounds: true,
        kernel_threads: 1,
        ..Default::default()
    }
}

/// Byte-exact snapshot of a store (checkpoint::save sorts rows, so equal
/// parameters mean equal bytes).
fn snapshot_bytes(ps: &mamdr::ps::ParameterServer, dim: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    checkpoint::save(ps, dim, &mut buf).unwrap();
    buf
}

struct LoopbackRun {
    report: mamdr::ps::DistributedReport,
    store_bytes: Vec<u8>,
    counters: std::collections::BTreeMap<String, u64>,
}

fn run_loopback(ds: &MdrDataset, plan: Option<&str>, tracer: Option<Arc<Tracer>>) -> LoopbackRun {
    let cfg = train_config();
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig {
        fault: plan.map(|s| FaultPlan::parse(s).unwrap()),
        retry: RetryPolicy { base_backoff_micros: 20, ..Default::default() },
        tracer,
        ..LoopbackConfig::new(cfg)
    };
    let mut trainer = DistributedTrainer::new(ds, loopback, Arc::clone(&metrics)).unwrap();
    let report = trainer.train(ds).unwrap();
    let store_bytes = snapshot_bytes(trainer.store(), cfg.dim);
    trainer.shutdown();
    LoopbackRun { report, store_bytes, counters: metrics.counter_values().into_iter().collect() }
}

/// Asserts the two runs produced the same math and the same wire traffic.
fn assert_runs_identical(traced: &LoopbackRun, untraced: &LoopbackRun) {
    assert_eq!(traced.report.mean_auc.to_bits(), untraced.report.mean_auc.to_bits());
    assert_eq!(traced.report.round_losses, untraced.report.round_losses);
    assert_eq!(traced.report.pulls, untraced.report.pulls);
    assert_eq!(traced.report.pushes, untraced.report.pushes);
    assert_eq!(traced.report.total_bytes, untraced.report.total_bytes);
    assert_eq!(traced.store_bytes, untraced.store_bytes, "parameters diverged under tracing");
    // Every wire counter the untraced run produced must be reproduced
    // exactly — the trace extension is stripped before byte accounting,
    // so even rpc_bytes_in_total is unchanged. The traced run may add
    // tracing-only counters (rpc_trace_bytes_total); nothing else.
    for (name, value) in &untraced.counters {
        assert_eq!(traced.counters.get(name), Some(value), "counter {name} diverged under tracing");
    }
    for name in traced.counters.keys() {
        assert!(
            untraced.counters.contains_key(name) || name == "rpc_trace_bytes_total",
            "unexpected tracing-only counter {name}"
        );
    }
}

/// Index the ring by span id for parent lookups.
fn by_id(spans: &[SpanRecord]) -> HashMap<u64, &SpanRecord> {
    spans.iter().map(|s| (s.span_id, s)).collect()
}

#[test]
fn fault_free_tracing_is_neutral_and_spans_parent_across_the_wire() {
    let ds = dataset();
    let untraced = run_loopback(&ds, None, None);
    let tracer = Arc::new(Tracer::new());
    let traced = run_loopback(&ds, None, Some(Arc::clone(&tracer)));

    assert_runs_identical(&traced, &untraced);
    assert_eq!(traced.counters.get("rpc_retries_total").copied().unwrap_or(0), 0);

    // Cross-wire parenting: each server-side handling span is a child of
    // the worker-side logical span whose frame carried its trace context.
    let spans = tracer.recent_spans(usize::MAX);
    let index = by_id(&spans);
    let expected_parent = |server: &str| match server {
        "server.pull" => "rpc.pull",
        "server.apply" => "rpc.push",
        "server.barrier" => "rpc.barrier",
        other => panic!("unexpected server span {other}"),
    };
    let mut linked = 0;
    for span in spans.iter().filter(|s| s.name.starts_with("server.")) {
        if span.name == "server.checkpoint" || span.name == "server.shutdown" {
            continue;
        }
        assert_ne!(span.parent_id, 0, "{} span arrived without a trace context", span.name);
        // The ring is bounded; a parent evicted before export cannot be
        // checked, but every parent still present must match.
        if let Some(parent) = index.get(&span.parent_id) {
            assert_eq!(parent.name, expected_parent(span.name));
            assert_eq!(parent.trace_id, span.trace_id);
            linked += 1;
        }
    }
    // Batched protocol v2: one prefetch pull, one staleness probe and one
    // barrier per (epoch, worker), plus one push batch per accepted
    // worker — 2 epochs × 2 workers × 4 = 16 linked pairs.
    assert!(linked >= 16, "only {linked} server spans linked to their logical client spans");

    // The round structure is there too: one `round` span per epoch, one
    // `worker.round` per (epoch, worker).
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("round"), 2);
    assert_eq!(count("worker.round"), 4);
    assert_eq!(count("round.apply"), 2);
    assert_eq!(count("round.evaluate"), 1);
    // Hot-path wire costs are aggregated as phases, not ring spans.
    assert!(tracer.phase("wire.encode").count > 0);
    assert!(tracer.phase("wire.decode").count > 0);
    assert!(tracer.phase("round.pull").count == 4);
    assert!(tracer.phase("round.compute").count == 4);
}

#[test]
fn faulted_tracing_is_neutral_and_groups_retries_under_one_logical_span() {
    let ds = dataset();
    // Protocol v2 sends far fewer frames than the single-row protocol, so
    // the per-frame fault probabilities are higher to keep every fault
    // class represented (retries, dedups, duplicates, a disconnect).
    let plan = "seed=11,drop_send=0.05,drop_recv=0.1,dup=0.4,disconnect=3";
    let untraced = run_loopback(&ds, Some(plan), None);
    let tracer = Arc::new(Tracer::new());
    let traced = run_loopback(&ds, Some(plan), Some(Arc::clone(&tracer)));

    // The seeded fault stream is consumed identically with tracing on:
    // same retries, same dedups, same disconnects, same frame count.
    assert_runs_identical(&traced, &untraced);
    assert!(untraced.counters["rpc_retries_total"] > 0);
    assert!(untraced.counters["rpc_push_deduped_total"] > 0);
    assert!(
        traced.counters["rpc_trace_bytes_total"] > 0,
        "trace extensions should be accounted separately"
    );

    let spans = tracer.recent_spans(usize::MAX);
    let index = by_id(&spans);

    // Retries re-send the same frame under the same logical span: at
    // least one logical RPC span must own two or more attempt children.
    let mut attempts_per_logical: HashMap<u64, u64> = HashMap::new();
    for span in spans.iter().filter(|s| s.name == "rpc.attempt") {
        assert_ne!(span.parent_id, 0);
        *attempts_per_logical.entry(span.parent_id).or_default() += 1;
    }
    let retried = attempts_per_logical.values().filter(|&&n| n >= 2).count();
    assert!(retried > 0, "faulted run recorded no multi-attempt logical spans");

    // A deduplicated push is visible server-side: its apply span carries
    // `deduped=1` and still parents to the client's one logical push span.
    let mut deduped_seen = 0;
    for span in spans.iter().filter(|s| s.name == "server.apply") {
        if span.attrs.iter().any(|&(k, v)| k == "deduped" && v == 1) {
            if let Some(parent) = index.get(&span.parent_id) {
                assert_eq!(parent.name, "rpc.push");
                assert_eq!(parent.trace_id, span.trace_id);
            }
            deduped_seen += 1;
        }
    }
    assert!(deduped_seen > 0, "no server.apply span marked deduped under a dup/retry plan");
}

#[test]
fn in_process_trainer_is_bit_identical_with_tracing_attached() {
    let ds = dataset();
    let cfg = train_config();

    let plain = DistributedMamdr::new(&ds, cfg);
    let baseline = plain.train(&ds);

    let tracer = Arc::new(Tracer::new());
    let traced_trainer = DistributedMamdr::new(&ds, cfg).with_tracer(Some(Arc::clone(&tracer)));
    let traced = traced_trainer.train(&ds);

    assert_eq!(traced.mean_auc.to_bits(), baseline.mean_auc.to_bits());
    assert_eq!(traced.round_losses, baseline.round_losses);
    assert_eq!(traced.pulls, baseline.pulls);
    assert_eq!(traced.pushes, baseline.pushes);
    assert_eq!(
        snapshot_bytes(traced_trainer.server(), cfg.dim),
        snapshot_bytes(plain.server(), cfg.dim),
        "in-process parameters diverged under tracing"
    );

    let spans = tracer.recent_spans(usize::MAX);
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("round"), cfg.epochs);
    assert_eq!(count("worker.round"), cfg.epochs * cfg.n_workers);
    assert_eq!(count("round.evaluate"), 1);
    // Every worker.round belongs to its epoch's round span.
    let index = by_id(&spans);
    for span in spans.iter().filter(|s| s.name == "worker.round") {
        let parent = index[&span.parent_id];
        assert_eq!(parent.name, "round.workers");
        assert_eq!(index[&parent.parent_id].name, "round");
    }
}

/// Trains a tiny model and freezes it into a serving snapshot (training is
/// seeded, so two calls with the same seed yield identical snapshots).
fn tiny_snapshot(version: u64) -> (mamdr::models::FeatureConfig, mamdr::serve::ServingSnapshot) {
    use mamdr::core::{FrameworkKind, TrainConfig, TrainEnv};
    use mamdr::models::{build_model, FeatureConfig, ModelConfig, ModelKind};

    let mut gen = GeneratorConfig::base("tracing-serve", 60, 40, 5);
    gen.domains = vec![DomainSpec::new("a", 300, 0.3), DomainSpec::new("b", 200, 0.4)];
    let ds = gen.generate();
    let fc = FeatureConfig::from_dataset(&ds);
    let mc = ModelConfig::tiny();
    let built = build_model(ModelKind::Mlp, &fc, &mc, ds.n_domains(), 5);
    let cfg = TrainConfig::quick().with_seed(5);
    let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params, cfg);
    let trained = FrameworkKind::Mamdr.build().train(&mut env);
    let spec = mamdr::serve::ModelSpec {
        kind: ModelKind::Mlp,
        features: fc,
        config: mc,
        n_domains: ds.n_domains(),
    };
    (fc, mamdr::serve::ServingSnapshot::from_trained(version, spec, trained).unwrap())
}

fn serve_scores(engine: Arc<ScoringEngine>, fc: &mamdr::models::FeatureConfig) -> Vec<u32> {
    let server = Server::start(engine, ServeConfig::default());
    let pending: Vec<_> = (0..64u32)
        .map(|i| {
            let req = ScoreRequest::new(
                (i % 2) as usize,
                (i * 7) % fc.n_users as u32,
                (i * 3) % fc.n_items as u32,
                i % fc.n_user_groups as u32,
                i % fc.n_item_cats as u32,
            );
            server.submit(req, None).expect("admitted")
        })
        .collect();
    let scores = pending
        .iter()
        .map(|p| match p.wait() {
            ServeResult::Scored(r) => r.score.to_bits(),
            other => panic!("expected score, got {other:?}"),
        })
        .collect();
    server.shutdown();
    scores
}

#[test]
fn serve_tracing_is_neutral_and_records_complete_request_chains() {
    let registry = MetricsRegistry::new();
    let (fc, snap) = tiny_snapshot(1);
    let untraced_scores = serve_scores(Arc::new(ScoringEngine::new(snap, &registry)), &fc);

    let tracer = Arc::new(Tracer::new());
    let (_, snap) = tiny_snapshot(1);
    let engine =
        Arc::new(ScoringEngine::new(snap, &registry).with_tracer(Some(Arc::clone(&tracer))));
    let traced_scores = serve_scores(Arc::clone(&engine), &fc);
    assert_eq!(traced_scores, untraced_scores, "scores diverged under tracing");

    // A hot swap is recorded as its own span with the version attributes.
    let (_, v2) = tiny_snapshot(2);
    let _ = engine.publish(v2);

    let spans = tracer.recent_spans(usize::MAX);
    let index = by_id(&spans);
    let chains: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "serve.request").collect();
    assert_eq!(chains.len(), 64, "every scored request leaves one serve.request span");
    for root in &chains {
        assert_eq!(root.parent_id, 0);
        // Each request's chain tiles its lifecycle with the four stages,
        // all children of the request root within one trace.
        for stage in ["serve.queue", "serve.coalesce", "serve.score", "serve.respond"] {
            let n = spans
                .iter()
                .filter(|s| {
                    s.name == stage && s.parent_id == root.span_id && s.trace_id == root.trace_id
                })
                .count();
            assert_eq!(n, 1, "request {} missing stage {stage}", root.span_id);
        }
    }
    // Stage spans never dangle: every one belongs to a recorded root.
    for span in spans.iter().filter(|s| s.name.starts_with("serve.") && s.parent_id != 0) {
        assert_eq!(index[&span.parent_id].name, "serve.request");
    }
    let swaps: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "serve.swap").collect();
    assert_eq!(swaps.len(), 1);
    assert!(swaps[0].attrs.contains(&("version", 2)));
    assert!(swaps[0].attrs.contains(&("retired_version", 1)));
}
