//! End-to-end serving integration: train a real model, freeze it into a
//! snapshot, and drive the micro-batching server — covering the subsystem's
//! three contracts: bit-determinism (thread count and batching), snapshot
//! file integrity, and zero-loss hot swap under load.

use mamdr::prelude::*;
use mamdr::serve::{
    ModelSpec, ScoreRequest, ScoringEngine, ServeConfig, ServeResult, Server, ServingSnapshot,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn dataset() -> MdrDataset {
    let mut gen = GeneratorConfig::base("serve-e2e", 80, 50, 13);
    gen.conflict = 0.3;
    gen.domains = vec![DomainSpec::new("a", 600, 0.3), DomainSpec::new("b", 300, 0.4)];
    gen.generate()
}

/// Trains a tiny MLP under MAMDR and packages everything a snapshot needs.
fn trained_pair(ds: &MdrDataset, seed: u64) -> (ModelSpec, TrainedModel) {
    let fc = FeatureConfig::from_dataset(ds);
    let mc = ModelConfig::tiny();
    let built = build_model(ModelKind::Mlp, &fc, &mc, ds.n_domains(), seed);
    let cfg = TrainConfig::quick().with_seed(seed);
    let mut env = TrainEnv::new(ds, built.model.as_ref(), built.params, cfg);
    let trained = FrameworkKind::Mamdr.build().train(&mut env);
    let spec =
        ModelSpec { kind: ModelKind::Mlp, features: fc, config: mc, n_domains: ds.n_domains() };
    (spec, trained)
}

fn requests(fc: &FeatureConfig, domain: usize, n: u32) -> Vec<ScoreRequest> {
    (0..n)
        .map(|i| {
            ScoreRequest::new(
                domain,
                (i * 7) % fc.n_users as u32,
                (i * 3) % fc.n_items as u32,
                i % fc.n_user_groups as u32,
                i % fc.n_item_cats as u32,
            )
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn serving_scores_are_bit_identical_across_thread_counts() {
    let ds = dataset();
    let (spec, tm) = trained_pair(&ds, 3);
    let fc = spec.features;
    let snap = ServingSnapshot::from_trained(1, spec, tm).unwrap();
    let reqs = requests(&fc, 0, 64);
    mamdr::tensor::pool::set_threads(1);
    let one = snap.score(0, &reqs);
    mamdr::tensor::pool::set_threads(4);
    let four = snap.score(0, &reqs);
    assert_eq!(bits(&one), bits(&four), "thread count changed served scores");
    assert!(one.iter().all(|p| (0.0..=1.0).contains(p)));
}

#[test]
fn micro_batching_never_changes_a_score() {
    let ds = dataset();
    let (spec, tm) = trained_pair(&ds, 5);
    let fc = spec.features;
    let reqs = requests(&fc, 1, 40);
    let snap = ServingSnapshot::from_trained(1, spec.clone(), tm.clone()).unwrap();
    // Reference: every request scored alone.
    let singles: Vec<f32> =
        reqs.iter().map(|r| snap.score(1, std::slice::from_ref(r))[0]).collect();
    // One big coalesced batch must agree bit-for-bit.
    assert_eq!(bits(&snap.score(1, &reqs)), bits(&singles));
    // And so must the server, whatever batch shapes its scheduler forms.
    for max_batch in [1usize, 7, 64] {
        let snap = ServingSnapshot::from_trained(1, spec.clone(), tm.clone()).unwrap();
        let engine = Arc::new(ScoringEngine::new(snap, &mamdr::obs::MetricsRegistry::new()));
        let config = ServeConfig { max_batch, ..ServeConfig::default() };
        let server = Server::start(engine, config);
        let pending: Vec<_> =
            reqs.iter().map(|r| server.submit(r.clone(), None).expect("admitted")).collect();
        for (p, &want) in pending.iter().zip(&singles) {
            match p.wait() {
                ServeResult::Scored(r) => {
                    assert_eq!(r.score.to_bits(), want.to_bits(), "max_batch={max_batch}")
                }
                other => panic!("expected score, got {other:?}"),
            }
        }
        server.shutdown();
    }
}

#[test]
fn snapshot_file_roundtrip_preserves_scores() {
    let ds = dataset();
    let (spec, tm) = trained_pair(&ds, 7);
    let fc = spec.features;
    let snap = ServingSnapshot::from_trained(42, spec, tm).unwrap();
    let reqs = requests(&fc, 0, 16);
    let before = snap.score(0, &reqs);

    let dir = std::env::temp_dir().join(format!("mamdr-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.mamdrsv");
    snap.save_to_path(&path).unwrap();
    let loaded = ServingSnapshot::load_from_path(&path).unwrap();
    assert_eq!(loaded.version(), 42);
    assert_eq!(bits(&loaded.score(0, &reqs)), bits(&before));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_swap_under_load_loses_no_requests() {
    let ds = dataset();
    let (spec, tm1) = trained_pair(&ds, 11);
    let (_, tm2) = trained_pair(&ds, 23);
    let fc = spec.features;
    let v1 = ServingSnapshot::from_trained(1, spec.clone(), tm1).unwrap();
    let v2 = ServingSnapshot::from_trained(2, spec.clone(), tm2).unwrap();

    let registry = mamdr::obs::MetricsRegistry::new();
    let engine = Arc::new(ScoringEngine::new(v1, &registry));
    let config = ServeConfig {
        max_batch: 16,
        max_wait_us: 200,
        queue_cap: 4096,
        n_workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&engine), config);

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 200;
    let results: Mutex<Vec<(ScoreRequest, ServeResult)>> = Mutex::new(Vec::new());
    let v2 = Mutex::new(Some(v2));
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let server = &server;
            let results = &results;
            let fc = &fc;
            s.spawn(move || {
                // Submit in flights of 25 so many requests are in the system
                // at once, then harvest the flight.
                let reqs = requests(fc, t % 2, PER_CLIENT as u32);
                for flight in reqs.chunks(25) {
                    let pending: Vec<_> = flight
                        .iter()
                        .map(|r| server.submit(r.clone(), None).expect("queue_cap is generous"))
                        .collect();
                    let mut out = results.lock().unwrap();
                    for (r, p) in flight.iter().zip(&pending) {
                        out.push((r.clone(), p.wait()));
                    }
                }
            });
        }
        // Swap mid-run, while clients are submitting.
        std::thread::sleep(Duration::from_millis(5));
        let retired = engine.publish(v2.lock().unwrap().take().unwrap());
        assert_eq!(retired.version(), 1);
    });

    // Zero loss: every admitted request resolved, none rejected.
    let results = results.into_inner().unwrap();
    assert_eq!(results.len(), CLIENTS * PER_CLIENT);
    assert_eq!(registry.counter("serve_requests_total").get(), (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(registry.counter("serve_responses_total").get(), (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(registry.counter("serve_rejected_total").get(), 0);
    assert_eq!(registry.counter("serve_swaps_total").get(), 1);

    // Every response was produced by exactly one of the two versions: its
    // score must bit-match that version's own forward pass on the request.
    let old = ServingSnapshot::from_trained(1, spec.clone(), trained_pair(&ds, 11).1).unwrap();
    let new = engine.snapshot();
    for (req, res) in &results {
        match res {
            ServeResult::Scored(r) => {
                let expect = match r.snapshot_version {
                    1 => old.score(req.domain, std::slice::from_ref(req))[0],
                    2 => new.score(req.domain, std::slice::from_ref(req))[0],
                    v => panic!("response from unknown snapshot version {v}"),
                };
                assert_eq!(
                    r.score.to_bits(),
                    expect.to_bits(),
                    "score does not match its claimed snapshot version {}",
                    r.snapshot_version
                );
            }
            other => panic!("request dropped or failed under hot swap: {other:?}"),
        }
    }

    // The swap is complete: anything submitted after it is scored by v2.
    let p = server.submit(requests(&fc, 0, 1).remove(0), None).unwrap();
    match p.wait() {
        ServeResult::Scored(r) => assert_eq!(r.snapshot_version, 2),
        other => panic!("expected score, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn ps_checkpoint_dir_feeds_serving() {
    use mamdr::ps::{checkpoint, ParamKey, ParameterServer};
    let dir = std::env::temp_dir().join(format!("mamdr-serve-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // No checkpoint yet: serving politely declines.
    assert!(ServingSnapshot::from_ps_checkpoint_dir(1, &dir, 2).unwrap().is_none());

    let ps = ParameterServer::new(2, 4);
    for table in 0..5u32 {
        for row in 0..6u32 {
            ps.init_row(ParamKey::new(table, row), vec![0.05 * (table + row) as f32; 4]);
        }
    }
    checkpoint::save_to_dir(&ps, 4, &dir, 8).unwrap();
    let snap = ServingSnapshot::from_ps_checkpoint_dir(3, &dir, 2).unwrap().expect("checkpoint");
    assert_eq!(snap.version(), 3);
    let reqs = vec![ScoreRequest::new(1, 2, 3, 1, 0), ScoreRequest::new(1, 4, 5, 0, 1)];
    let scores = snap.score(1, &reqs);
    assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
    // Same state served live agrees with the checkpointed path.
    let live = ServingSnapshot::from_ps(3, &ps, 2);
    assert_eq!(bits(&live.score(1, &reqs)), bits(&scores));
    std::fs::remove_dir_all(&dir).ok();
}
