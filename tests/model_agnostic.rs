//! The model-agnosticism claim (paper Table X), as a test: every learning
//! framework must train every architecture without any model-specific
//! code path.

use mamdr::prelude::*;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("agnostic", 60, 40, 33);
    cfg.dense_dim = 4;
    cfg.domains = vec![DomainSpec::new("a", 300, 0.3), DomainSpec::new("b", 200, 0.4)];
    cfg.generate()
}

#[test]
fn every_framework_wraps_every_architecture() {
    let ds = dataset();
    let mut cfg = TrainConfig::quick();
    cfg.epochs = 1;
    cfg.dr_samples = 1;
    cfg.dr_lookahead_batches = 1;
    cfg.finetune_epochs = 1;
    for mk in ModelKind::ALL {
        for fk in FrameworkKind::ALL {
            let r = run_experiment(&ds, mk, &ModelConfig::tiny(), fk, cfg);
            assert!(
                r.domain_auc.iter().all(|a| a.is_finite()),
                "{} x {} produced non-finite AUC",
                mk.name(),
                fk.name()
            );
        }
    }
}

#[test]
fn specific_parameters_compose_for_every_architecture() {
    // Θ = θS + θi (Eq. 4) must be well-defined for any model: MAMDR's
    // per-domain parameters have the same flat layout as the shared ones.
    let ds = dataset();
    let mut cfg = TrainConfig::quick();
    cfg.epochs = 1;
    for mk in [ModelKind::Mlp, ModelKind::Star, ModelKind::Mmoe, ModelKind::AutoInt] {
        let fc = FeatureConfig::from_dataset(&ds);
        let built = build_model(mk, &fc, &ModelConfig::tiny(), ds.n_domains(), 3);
        let mut env = TrainEnv::new(&ds, built.model.as_ref(), built.params, cfg);
        let trained = FrameworkKind::Mamdr.build().train(&mut env);
        for d in 0..ds.n_domains() {
            let flat = trained.flat_for(d);
            assert_eq!(flat.len(), env.n_params(), "{}", mk.name());
            assert!(flat.iter().all(|x| x.is_finite()), "{}", mk.name());
        }
    }
}
