//! Whole-system tests of the fault-tolerance layer: worker supervision
//! (killed / hung workers restarted without divergence), crash-resumable
//! rounds (a resumed driver is bit-identical to an uninterrupted one),
//! and the divergence guardrails (poisoned gradients skipped, rollbacks
//! byte-exact). Plus a source-level gate: the supervised round path must
//! stay free of panicking escape hatches.

use mamdr::data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr::obs::MetricsRegistry;
use mamdr::ps::{checkpoint, DistributedConfig, DistributedMamdr, GuardConfig};
use mamdr::rpc::{DistributedTrainer, FaultPlan, LoopbackConfig, TrainerError};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("recovery", 80, 50, 55);
    cfg.domains = (0..6).map(|i| DomainSpec::new(format!("d{i}"), 300, 0.3)).collect();
    cfg.generate()
}

fn train_config(n_workers: usize, epochs: usize) -> DistributedConfig {
    DistributedConfig {
        n_workers,
        epochs,
        sync_rounds: true,
        kernel_threads: 1,
        ..Default::default()
    }
}

/// Byte-exact snapshot of a store (checkpoint::save sorts rows, so equal
/// parameters mean equal bytes).
fn snapshot_bytes(ps: &mamdr::ps::ParameterServer, dim: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    checkpoint::save(ps, dim, &mut buf).unwrap();
    buf
}

/// A fresh per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mamdr-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Interrupt a run after `interrupt_after` rounds (by simply configuring
/// that many epochs — the driver process "dies" when the trainer is
/// dropped), then resume from the journal directory and compare every
/// report field and the final parameter bytes against an uninterrupted
/// run. Exercised at 1 and 4 workers.
fn resume_is_bit_identical(n_workers: usize) {
    let ds = dataset();
    let full = train_config(n_workers, 4);
    let dir = scratch_dir(&format!("resume-w{n_workers}"));

    // Ground truth: one uninterrupted run, no journaling at all.
    let metrics = Arc::new(MetricsRegistry::new());
    let mut uninterrupted =
        DistributedTrainer::new(&ds, LoopbackConfig::new(full), metrics).unwrap();
    let expected = uninterrupted.train(&ds).unwrap();
    let expected_bytes = snapshot_bytes(uninterrupted.store(), full.dim);
    uninterrupted.shutdown();

    // The "crashed" driver: journals every round, stops after round 2.
    let crashed_cfg = LoopbackConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..LoopbackConfig::new(train_config(n_workers, 2))
    };
    let metrics = Arc::new(MetricsRegistry::new());
    let mut crashed = DistributedTrainer::new(&ds, crashed_cfg, Arc::clone(&metrics)).unwrap();
    crashed.train(&ds).unwrap();
    crashed.shutdown();
    assert_eq!(metrics.counter("rpc_journal_writes_total").get(), 2);

    // The restarted driver: resumes at round 2 and finishes the schedule.
    let resumed_cfg = LoopbackConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        resume: true,
        ..LoopbackConfig::new(full)
    };
    let metrics = Arc::new(MetricsRegistry::new());
    let mut resumed = DistributedTrainer::new(&ds, resumed_cfg, metrics).unwrap();
    assert_eq!(resumed.start_epoch(), 2, "resume should pick up the newest journal");
    let report = resumed.train(&ds).unwrap();

    // Bit-identity, in the parameters and in every report aggregate: the
    // interruption is invisible.
    assert_eq!(report.round_losses, expected.round_losses);
    assert_eq!(report.mean_auc.to_bits(), expected.mean_auc.to_bits());
    assert_eq!(report.pulls, expected.pulls);
    assert_eq!(report.pushes, expected.pushes);
    assert_eq!(report.total_bytes, expected.total_bytes);
    assert_eq!(report.cache, expected.cache);
    assert_eq!(
        snapshot_bytes(resumed.store(), full.dim),
        expected_bytes,
        "resumed parameters diverged from the uninterrupted run"
    );
    resumed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_is_bit_identical_with_one_worker() {
    resume_is_bit_identical(1);
}

#[test]
fn resume_is_bit_identical_with_four_workers() {
    resume_is_bit_identical(4);
}

#[test]
fn resume_falls_back_past_a_corrupt_journal() {
    let ds = dataset();
    let full = train_config(2, 3);
    let dir = scratch_dir("corrupt-journal");

    let metrics = Arc::new(MetricsRegistry::new());
    let mut uninterrupted =
        DistributedTrainer::new(&ds, LoopbackConfig::new(full), metrics).unwrap();
    let expected = uninterrupted.train(&ds).unwrap();
    let expected_bytes = snapshot_bytes(uninterrupted.store(), full.dim);
    uninterrupted.shutdown();

    let crashed_cfg = LoopbackConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        ..LoopbackConfig::new(train_config(2, 2))
    };
    let mut crashed =
        DistributedTrainer::new(&ds, crashed_cfg, Arc::new(MetricsRegistry::new())).unwrap();
    crashed.train(&ds).unwrap();
    crashed.shutdown();

    // Tear the newest journal (a crash mid-write); resume must fall back
    // to the round-1 boundary and re-run rounds 1 and 2.
    let newest = dir.join("journal-0000000002.mamdrj");
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    let resumed_cfg = LoopbackConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 1,
        resume: true,
        ..LoopbackConfig::new(full)
    };
    let mut resumed =
        DistributedTrainer::new(&ds, resumed_cfg, Arc::new(MetricsRegistry::new())).unwrap();
    assert_eq!(resumed.start_epoch(), 1, "the torn journal must be skipped");
    let report = resumed.train(&ds).unwrap();
    assert_eq!(report.round_losses, expected.round_losses);
    assert_eq!(report.mean_auc.to_bits(), expected.mean_auc.to_bits());
    assert_eq!(snapshot_bytes(resumed.store(), full.dim), expected_bytes);
    resumed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_a_journal_is_a_typed_error() {
    let ds = dataset();
    let dir = scratch_dir("empty-resume");
    let cfg = LoopbackConfig {
        checkpoint_dir: Some(dir.clone()),
        resume: true,
        ..LoopbackConfig::new(train_config(1, 1))
    };
    match DistributedTrainer::new(&ds, cfg, Arc::new(MetricsRegistry::new())) {
        Err(TrainerError::Resume(_)) => {}
        Err(other) => panic!("expected TrainerError::Resume, got {other}"),
        Ok(_) => panic!("resume from an empty directory should fail"),
    }
    // And resume/journaling without a directory is rejected up front.
    let cfg = LoopbackConfig { checkpoint_every: 3, ..LoopbackConfig::new(train_config(1, 1)) };
    assert!(matches!(
        DistributedTrainer::new(&ds, cfg, Arc::new(MetricsRegistry::new())),
        Err(TrainerError::Config(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_workers_are_restarted_with_exact_counters_and_identical_parameters() {
    let ds = dataset();
    let cfg = train_config(2, 3);

    // In-process ground truth (no network, no faults).
    let local_trainer = DistributedMamdr::new(&ds, cfg);
    let local = local_trainer.train(&ds);

    // Kill worker 1 in round 0 and worker 0 in round 2. A killed worker
    // dies before its first read, so its replacement re-runs the partition
    // exactly once — traffic stays identical to a clean run.
    let plan = FaultPlan::parse("kill=0:1+2:0").unwrap();
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig { fault: Some(plan), ..LoopbackConfig::new(cfg) };
    let mut trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
    let report = trainer.train(&ds).unwrap();

    assert_eq!(metrics.counter("rpc_faults_worker_kills_total").get(), 2);
    assert_eq!(metrics.counter("rpc_worker_failures_total").get(), 2);
    assert_eq!(metrics.counter("rpc_worker_restarts_total").get(), 2);

    // Zero divergence: the restarts are invisible to the math.
    assert_eq!(report.round_losses, local.round_losses);
    assert_eq!(report.mean_auc.to_bits(), local.mean_auc.to_bits());
    assert_eq!(report.pulls, local.pulls);
    assert_eq!(report.pushes, local.pushes);
    assert_eq!(report.cache, local.cache);
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), local.pushes);
    assert_eq!(
        snapshot_bytes(trainer.store(), cfg.dim),
        snapshot_bytes(local_trainer.server(), cfg.dim),
        "worker restarts changed the parameters"
    );
    trainer.shutdown();
}

#[test]
fn a_worker_killed_every_round_exhausts_its_retry_budget_into_a_typed_error() {
    let ds = dataset();
    let cfg = train_config(2, 2);
    // Replacements skip the kill check, so a single kill entry cannot fail
    // a round; to exhaust the budget, kill the *replacements* too by
    // making worker_round itself always fail: an unroutable retry target
    // does that for every attempt. Simpler and fully deterministic: point
    // the kill schedule at round 0 and give the trainer zero retries.
    let plan = FaultPlan::parse("kill=0:0").unwrap();
    let loopback =
        LoopbackConfig { fault: Some(plan), max_worker_retries: 0, ..LoopbackConfig::new(cfg) };
    let mut trainer =
        DistributedTrainer::new(&ds, loopback, Arc::new(MetricsRegistry::new())).unwrap();
    match trainer.train(&ds) {
        Err(TrainerError::RoundFailed { epoch, failures }) => {
            assert_eq!(epoch, 0);
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].worker(), 0);
        }
        other => panic!("expected RoundFailed, got {other:?}"),
    }
    // The failed round released the barrier for the surviving worker and
    // the server is still healthy: shutdown drains cleanly.
    trainer.shutdown();
    assert!(matches!(trainer.addr(), Err(TrainerError::ServerStopped)));
}

#[test]
fn hung_worker_is_replaced_without_divergence() {
    let ds = dataset();
    let cfg = train_config(2, 3);

    let local_trainer = DistributedMamdr::new(&ds, cfg);
    let local = local_trainer.train(&ds);

    // Worker 0 stalls for 2 s in round 1; the supervisor's 150 ms deadline
    // trips long before that and a replacement re-runs the partition. The
    // straggler eventually wakes and reports a duplicate result, which the
    // supervisor discards (first-in wins — both are bit-identical anyway).
    let plan = FaultPlan::parse("hang=1:0,hang_micros=2000000").unwrap();
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig {
        fault: Some(plan),
        worker_deadline: Duration::from_millis(150),
        ..LoopbackConfig::new(cfg)
    };
    let mut trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
    let report = trainer.train(&ds).unwrap();

    assert_eq!(metrics.counter("rpc_faults_worker_hangs_total").get(), 1);
    assert!(metrics.counter("rpc_worker_restarts_total").get() >= 1);
    assert_eq!(report.round_losses, local.round_losses);
    assert_eq!(report.mean_auc.to_bits(), local.mean_auc.to_bits());
    // Traffic is NOT compared: the discarded straggler's reads are real
    // wire traffic. The parameters must still be bit-identical.
    assert_eq!(
        snapshot_bytes(trainer.store(), cfg.dim),
        snapshot_bytes(local_trainer.server(), cfg.dim),
        "hung-worker recovery changed the parameters"
    );
    trainer.shutdown();
}

#[test]
fn poisoned_gradient_trips_the_guard_and_parameters_stay_finite() {
    let ds = dataset();
    let mut cfg = train_config(2, 4);
    cfg.guard = GuardConfig::enabled();

    // Worker 0's round-2 gradients carry a NaN; the guard must skip that
    // update (one trip, no rollback) and training must finish finite.
    let plan = FaultPlan::parse("poison=2:0").unwrap();
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig { fault: Some(plan), ..LoopbackConfig::new(cfg) };
    let mut trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
    let report = trainer.train(&ds).unwrap();

    assert_eq!(report.guard_trips, 1);
    assert_eq!(report.guard_rollbacks, 0);
    assert_eq!(report.round_losses.len(), 4);
    assert!(report.round_losses.iter().all(|l| l.is_finite()));
    assert!(report.mean_auc.is_finite());
    for (key, row) in trainer.store().dump_rows() {
        assert!(row.iter().all(|v| v.is_finite()), "non-finite parameters in {key:?}");
    }
    report.export(&metrics);
    assert_eq!(metrics.counter("ps_guard_trips_total").get(), 1);
    trainer.shutdown();
}

#[test]
fn guard_rollback_restores_the_last_clean_round_byte_for_byte() {
    let ds = dataset();
    let mut cfg = train_config(2, 2);
    cfg.guard = GuardConfig { max_consecutive_trips: 1, ..GuardConfig::enabled() };

    // Round 1: worker 0's healthy update is applied first, then worker 1's
    // poisoned update trips the guard — with a one-trip budget the verdict
    // is an immediate rollback, which must also discard worker 0's
    // already-applied prefix. The store must land exactly on the round-0
    // boundary: the same bytes a clean one-round run produces.
    let clean_one_round = DistributedMamdr::new(&ds, train_config(2, 1));
    let after_round_0 = clean_one_round.train(&ds);

    let plan = FaultPlan::parse("poison=1:1").unwrap();
    let loopback = LoopbackConfig { fault: Some(plan), ..LoopbackConfig::new(cfg) };
    let mut trainer =
        DistributedTrainer::new(&ds, loopback, Arc::new(MetricsRegistry::new())).unwrap();
    let report = trainer.train(&ds).unwrap();

    assert_eq!(report.guard_trips, 1);
    assert_eq!(report.guard_rollbacks, 1);
    assert_eq!(report.round_losses[0], after_round_0.round_losses[0]);
    assert_eq!(report.mean_auc.to_bits(), after_round_0.mean_auc.to_bits());
    assert_eq!(
        snapshot_bytes(trainer.store(), cfg.dim),
        snapshot_bytes(clean_one_round.server(), cfg.dim),
        "rollback did not restore the pre-trip state byte-for-byte"
    );
    trainer.shutdown();
}

#[test]
fn the_supervised_round_path_has_no_panicking_escape_hatches() {
    // The whole point of typed WorkerFailure propagation is that a flaky
    // worker can never take the driver down with it. Enforce it at the
    // source level: the rpc trainer must not contain unwrap/expect/panic.
    let src =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/crates/rpc/src/trainer.rs"))
            .unwrap();
    for forbidden in
        [".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("]
    {
        assert!(
            !src.contains(forbidden),
            "crates/rpc/src/trainer.rs contains `{forbidden}` — \
             round-path failures must propagate as WorkerFailure/TrainerError"
        );
    }
}
