//! End-to-end chaos proof of the continual train→publish→serve loop: a
//! networked trainer publishes every round through the validation gate
//! into a live replica pool while closed-loop traffic scores through it.
//! Under all three scheduled publisher faults in one run — a publisher
//! killed mid-write, a committed snapshot corrupted on disk, and a
//! NaN-poisoned training round — the pool must keep answering from the
//! last-good version with zero dropped requests, every verdict must land
//! in the exact typed counter, and the final served snapshot must be
//! byte-identical to one built offline from a clean run of the same
//! length as the last accepted round.

use mamdr::data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr::obs::{MetricsRegistry, PublishState};
use mamdr::ps::{DistributedConfig, DistributedMamdr, GuardConfig};
use mamdr::rpc::{DistributedTrainer, FaultPlan, LoopbackConfig, PublishHook};
use mamdr::serve::{
    GateConfig, PublishGate, ReplicatedServer, ServeConfig, ServeResult, ServingSnapshot,
    GATE_REASONS,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("publish", 60, 40, 91);
    cfg.domains = (0..4).map(|i| DomainSpec::new(format!("d{i}"), 220, 0.3)).collect();
    cfg.generate()
}

fn train_config(epochs: usize) -> DistributedConfig {
    DistributedConfig {
        n_workers: 2,
        epochs,
        sync_rounds: true,
        kernel_threads: 1,
        ..Default::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mamdr-publish-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot_bytes(snap: &ServingSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    snap.write_to(&mut buf).unwrap();
    buf
}

/// Everything one gated continual run produced.
struct GatedRun {
    registry: Arc<MetricsRegistry>,
    state: Arc<PublishState>,
    /// The gate's last-good snapshot at exit.
    final_snapshot: Arc<ServingSnapshot>,
    /// Version the pool answered from at exit.
    pool_version: u64,
    /// Distinct snapshot versions live traffic was scored against.
    versions_served: BTreeSet<u64>,
    /// Live requests scored / dropped (shed, deadline, submit error).
    scored: u64,
    dropped: u64,
    report: mamdr::ps::DistributedReport,
}

fn counter(run: &GatedRun, name: &str) -> u64 {
    run.registry.counter(name).get()
}

fn rejected(run: &GatedRun, reason: &str) -> u64 {
    counter(run, &format!("publish_rejected_total{{reason=\"{reason}\"}}"))
}

/// Runs the full loop: a seeded v0 snapshot, a replica pool behind a
/// gate, a loopback trainer with a publish hook, and a closed-loop load
/// thread scoring the fixed probe set across every swap.
fn run_gated(
    ds: &MdrDataset,
    cfg: DistributedConfig,
    plan: Option<FaultPlan>,
    canary_pct: f64,
    dir: &Path,
) -> GatedRun {
    // The v0 serving snapshot: the freshly seeded store, identical to the
    // networked trainer's merged initial state by construction.
    let seeder = DistributedMamdr::new(ds, cfg);
    let snap0 = ServingSnapshot::from_ps(0, seeder.server(), ds.n_domains());
    drop(seeder);

    let registry = Arc::new(MetricsRegistry::new());
    let state = Arc::new(PublishState::new(0));
    let pool = Arc::new(ReplicatedServer::start(snap0, 2, ServeConfig::default(), &registry, None));
    let gate_cfg =
        GateConfig { max_divergence: 1.0, canary_pct, max_canary_drift: 1.0, ..Default::default() };
    let gate = Arc::new(PublishGate::new(
        gate_cfg,
        pool.engine(0).snapshot(),
        &registry,
        Some(Arc::clone(&state)),
        None,
    ));

    let hook = {
        let n_domains = ds.n_domains();
        let gate = Arc::clone(&gate);
        let pool = Arc::clone(&pool);
        PublishHook {
            every: 1,
            dir: dir.join("publish"),
            encode: Arc::new(move |round, ps| {
                let mut buf = Vec::new();
                ServingSnapshot::from_ps(round, ps, n_domains)
                    .write_to(&mut buf)
                    .map_err(|e| e.to_string())?;
                Ok(buf)
            }),
            on_commit: Arc::new(move |round, path| {
                let _ = gate.offer_file(round, path, &pool);
            }),
        }
    };
    let loopback = LoopbackConfig { fault: plan, publish: Some(hook), ..LoopbackConfig::new(cfg) };
    let mut trainer = DistributedTrainer::new(ds, loopback, Arc::clone(&registry)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let probes = pool.engine(0).snapshot().probe_requests(0xBEEF, 4);
            let (mut scored, mut dropped) = (0u64, 0u64);
            let mut versions = BTreeSet::new();
            'outer: loop {
                for req in &probes {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    match pool.submit(req.clone(), None) {
                        Ok(pending) => match pending.wait() {
                            ServeResult::Scored(r) => {
                                scored += 1;
                                versions.insert(r.snapshot_version);
                            }
                            _ => dropped += 1,
                        },
                        Err(_) => dropped += 1,
                    }
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            (scored, dropped, versions)
        })
    };
    let report = trainer.train(ds).unwrap();
    stop.store(true, Ordering::Relaxed);
    let (scored, dropped, versions_served) = load.join().unwrap();
    trainer.shutdown();
    drop(trainer); // releases the hook's pool/gate handles

    let final_snapshot = gate.last_good();
    let pool_version = pool.current_version();
    Arc::try_unwrap(pool).ok().expect("pool unshared after trainer drop").shutdown();
    GatedRun {
        registry,
        state,
        final_snapshot,
        pool_version,
        versions_served,
        scored,
        dropped,
        report,
    }
}

/// All three publisher faults in one run, guard disabled (the gate is the
/// last line of defense): the pool must never serve a faulted version,
/// drop nothing, and end byte-identical to the offline build of the last
/// clean round.
#[test]
fn chaos_run_never_swaps_a_bad_version_and_drops_nothing() {
    let ds = dataset();
    let dir = scratch_dir("chaos");
    // 6 rounds, publishing every round: v1 accept, v2 publisher killed
    // mid-write, v3 committed-then-corrupted (digest reject), v4 accept,
    // v5/v6 non-finite (epoch 4 poisons every worker and the NaN persists
    // in the store).
    let plan = FaultPlan::parse("kill_publish=2,corrupt_snapshot=3,poison_round=4").unwrap();
    let run = run_gated(&ds, train_config(6), Some(plan), 0.0, &dir);

    // Exact publisher counters: 6 attempts, one killed (never offered),
    // the rest committed.
    assert_eq!(counter(&run, "publish_attempts_total"), 6);
    assert_eq!(counter(&run, "publish_kills_total"), 1);
    assert_eq!(counter(&run, "publish_corruptions_total"), 1);
    assert_eq!(counter(&run, "publish_commits_total"), 5);

    // Exact gate verdicts: v1/v4 in, v3 out on digest, v5/v6 out on the
    // finite check, one rollback per rejection.
    assert_eq!(counter(&run, "publish_offered_total"), 5);
    assert_eq!(counter(&run, "publish_accepted_total"), 2);
    assert_eq!(counter(&run, "publish_rollbacks_total"), 3);
    assert_eq!(rejected(&run, "digest"), 1);
    assert_eq!(rejected(&run, "nonfinite"), 2);
    for reason in GATE_REASONS.iter().filter(|r| !matches!(**r, "digest" | "nonfinite")) {
        assert_eq!(rejected(&run, reason), 0, "unexpected {reason} rejections");
    }

    // The serving tier: zero drops, and traffic only ever saw versions
    // the gate admitted (v0 seed, v1, v4) — never a faulted one.
    assert_eq!(run.dropped, 0, "live requests dropped during chaos");
    assert!(run.scored > 0, "load thread never got a request through");
    for v in &run.versions_served {
        assert!([0, 1, 4].contains(v), "traffic saw unadmitted version v{v}");
    }

    // Health state: degraded on the two trailing rejects, last-good v4.
    assert_eq!(run.state.last_good_version(), 4);
    assert_eq!(run.state.consecutive_failures(), 2);
    assert!(run.state.healthz_body().starts_with("degraded last_good_version=4"));

    // On disk: the killed round left only a staging file (the committed
    // name must not exist — atomicity), the corrupt round's file exists
    // but fails its digest.
    let publish_dir = dir.join("publish");
    assert!(publish_dir.join("snapshot-0000000002.mamdrsv.tmp").exists());
    assert!(!publish_dir.join("snapshot-0000000002.mamdrsv").exists());
    let corrupt = publish_dir.join("snapshot-0000000003.mamdrsv");
    assert!(ServingSnapshot::load_from_path(&corrupt).is_err());

    // Byte-exact final state: the served snapshot equals one built
    // offline from an in-process run of exactly the last clean round
    // count (4) — the publisher faults were invisible to training, so
    // round 4's store is the 4-epoch store.
    assert_eq!(run.final_snapshot.version(), 4);
    assert_eq!(run.pool_version, 4);
    let offline_trainer = DistributedMamdr::new(&ds, train_config(4));
    offline_trainer.train(&ds);
    let offline = ServingSnapshot::from_ps(4, offline_trainer.server(), ds.n_domains());
    assert_eq!(
        snapshot_bytes(&run.final_snapshot),
        snapshot_bytes(&offline),
        "served snapshot diverged from the offline build of the last clean round"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault-free continual publishing (canary phase on) is invisible: every
/// round cuts over, nothing rolls back, and the final served snapshot —
/// and the pool's live scores — are bit-identical to building a snapshot
/// directly from the in-process store, the pre-gate serving path.
#[test]
fn fault_free_gated_run_is_bit_identical_to_direct_serving() {
    let ds = dataset();
    let dir = scratch_dir("clean");
    let run = run_gated(&ds, train_config(3), None, 50.0, &dir);

    assert_eq!(counter(&run, "publish_offered_total"), 3);
    assert_eq!(counter(&run, "publish_accepted_total"), 3);
    assert_eq!(counter(&run, "publish_rollbacks_total"), 0);
    assert_eq!(counter(&run, "publish_canary_phases_total"), 3);
    for reason in GATE_REASONS {
        assert_eq!(rejected(&run, reason), 0, "unexpected {reason} rejection");
    }
    assert_eq!(run.dropped, 0);
    assert_eq!(run.state.consecutive_failures(), 0);
    assert_eq!(run.state.healthz_body(), "ok\n");
    assert_eq!(run.final_snapshot.version(), 3);

    // The direct path: train in process, build the snapshot by hand.
    let direct_trainer = DistributedMamdr::new(&ds, train_config(3));
    direct_trainer.train(&ds);
    let direct = ServingSnapshot::from_ps(3, direct_trainer.server(), ds.n_domains());
    assert_eq!(snapshot_bytes(&run.final_snapshot), snapshot_bytes(&direct));

    // And the scores the gated pool would serve are the scores the
    // direct snapshot computes, bit for bit.
    let probes = direct.probe_requests(7, 3);
    for req in &probes {
        let gated = run.final_snapshot.score(req.domain, std::slice::from_ref(req))[0];
        let want = direct.score(req.domain, std::slice::from_ref(req))[0];
        assert_eq!(gated.to_bits(), want.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// With the PR 5 guard armed, a `poison_round` never reaches the store:
/// the trainer skips the divergent updates, every published snapshot is
/// finite, and the gate admits them all — defense in depth, with the
/// inner rail firing first.
#[test]
fn armed_guard_intercepts_poisoned_round_before_the_gate() {
    let ds = dataset();
    let dir = scratch_dir("guarded");
    let mut cfg = train_config(3);
    cfg.guard = GuardConfig::enabled();
    // Epoch 1 (publishing as v2) is poisoned on every worker.
    let plan = FaultPlan::parse("poison_round=1").unwrap();
    let run = run_gated(&ds, cfg, Some(plan), 0.0, &dir);

    assert!(run.report.guard_trips > 0, "guard never fired on the poisoned round");
    assert_eq!(rejected(&run, "nonfinite"), 0, "NaN leaked past the armed guard");
    assert_eq!(counter(&run, "publish_accepted_total"), 3);
    assert_eq!(counter(&run, "publish_rollbacks_total"), 0);
    assert_eq!(run.final_snapshot.version(), 3);
    run.final_snapshot.check_finite().expect("served parameters must be finite");
    assert_eq!(run.dropped, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
