//! Whole-system tests of the networked PS–worker runtime: fault-free
//! loopback training must be bit-identical to the in-process synchronous
//! trainer, and training under an aggressive fault plan must still apply
//! every outer update exactly once — same final parameters, all rounds
//! completed, with the chaos fully visible in the `rpc_*` counters.

use mamdr::data::{DomainSpec, GeneratorConfig, MdrDataset};
use mamdr::obs::MetricsRegistry;
use mamdr::ps::{checkpoint, DistributedConfig, DistributedMamdr};
use mamdr::rpc::{DistributedTrainer, FaultPlan, LoopbackConfig, RetryPolicy};
use std::sync::Arc;

fn dataset() -> MdrDataset {
    let mut cfg = GeneratorConfig::base("rpc", 80, 50, 55);
    cfg.domains = (0..6).map(|i| DomainSpec::new(format!("d{i}"), 300, 0.3)).collect();
    cfg.generate()
}

fn train_config() -> DistributedConfig {
    DistributedConfig {
        n_workers: 2,
        epochs: 3,
        sync_rounds: true,
        kernel_threads: 1,
        ..Default::default()
    }
}

/// Byte-exact snapshot of a store (checkpoint::save sorts rows, so equal
/// parameters mean equal bytes).
fn snapshot_bytes(ps: &mamdr::ps::ParameterServer, dim: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    checkpoint::save(ps, dim, &mut buf).unwrap();
    buf
}

#[test]
fn fault_free_loopback_training_is_bit_identical_to_in_process() {
    let ds = dataset();
    let cfg = train_config();

    let local_trainer = DistributedMamdr::new(&ds, cfg);
    let local = local_trainer.train(&ds);

    let metrics = Arc::new(MetricsRegistry::new());
    let mut net_trainer =
        DistributedTrainer::new(&ds, LoopbackConfig::new(cfg), Arc::clone(&metrics)).unwrap();
    let remote = net_trainer.train(&ds).unwrap();

    // Every report field matches exactly — same losses, same AUC bits,
    // same RPC and byte counts.
    assert_eq!(remote.mean_auc.to_bits(), local.mean_auc.to_bits());
    assert_eq!(remote.round_losses, local.round_losses);
    assert_eq!(remote.pulls, local.pulls);
    assert_eq!(remote.pushes, local.pushes);
    assert_eq!(remote.total_bytes, local.total_bytes);
    assert_eq!(remote.cache, local.cache);
    assert_eq!(remote.max_staleness, 0);

    // The stores themselves are byte-identical.
    assert_eq!(
        snapshot_bytes(net_trainer.store(), cfg.dim),
        snapshot_bytes(local_trainer.server(), cfg.dim),
        "loopback and in-process parameters diverged"
    );

    // A clean network: frames flowed, nothing retried, nothing deduped.
    assert!(metrics.counter("rpc_frames_total").get() > 0);
    assert_eq!(metrics.counter("rpc_retries_total").get(), 0);
    assert_eq!(metrics.counter("rpc_push_deduped_total").get(), 0);
    assert_eq!(metrics.counter("rpc_push_applied_total").get(), local.pushes);
    net_trainer.shutdown();
}

#[test]
fn faulted_training_completes_with_zero_lost_or_double_applied_updates() {
    let ds = dataset();
    let cfg = train_config();

    // The ground truth: the same run with a perfect network.
    let local_trainer = DistributedMamdr::new(&ds, cfg);
    let local = local_trainer.train(&ds);

    // Drops, delays, duplicates, and a mid-round disconnect on every
    // client's fourth attempt. The batched protocol sends two orders of
    // magnitude fewer frames than single-row v1, so the per-frame
    // probabilities are higher to keep every fault class represented.
    let plan = FaultPlan::parse(
        "seed=11,drop_send=0.05,drop_recv=0.1,delay=0.05:100,dup=0.4,disconnect=3",
    )
    .unwrap();
    let metrics = Arc::new(MetricsRegistry::new());
    let loopback = LoopbackConfig {
        fault: Some(plan),
        retry: RetryPolicy { base_backoff_micros: 20, ..Default::default() },
        ..LoopbackConfig::new(cfg)
    };
    let mut net_trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
    let remote = net_trainer.train(&ds).unwrap();

    // All rounds ran, and the learning signal is the exact one the clean
    // run produced: the fault layer is invisible to the math.
    assert_eq!(remote.round_losses.len(), cfg.epochs);
    assert_eq!(remote.round_losses, local.round_losses);
    assert_eq!(remote.mean_auc.to_bits(), local.mean_auc.to_bits());
    assert_eq!(
        snapshot_bytes(net_trainer.store(), cfg.dim),
        snapshot_bytes(local_trainer.server(), cfg.dim),
        "faults lost or double-applied at least one update"
    );

    // Sequence-number audit: the store received exactly the clean run's
    // update count; every surviving duplicate or retried push landed in
    // the dedup path instead of the apply path.
    let applied = metrics.counter("rpc_push_applied_total").get();
    let deduped = metrics.counter("rpc_push_deduped_total").get();
    assert_eq!(applied, local.pushes);
    assert_eq!(net_trainer.store().traffic().snapshot().1, local.pushes);

    // The chaos actually happened and was counted.
    assert!(metrics.counter("rpc_retries_total").get() > 0);
    assert!(metrics.counter("rpc_faults_dropped_total").get() > 0);
    assert!(metrics.counter("rpc_faults_duplicated_total").get() > 0);
    assert!(metrics.counter("rpc_faults_disconnects_total").get() > 0);
    assert!(deduped > 0, "duplicates/retries should have exercised dedup");
    net_trainer.shutdown();
}

#[test]
fn identical_fault_plans_produce_identical_fault_counters() {
    let ds = dataset();
    let cfg = train_config();
    let run = || {
        let plan =
            FaultPlan::parse("seed=9,drop_send=0.05,drop_recv=0.05,dup=0.05,disconnect=5").unwrap();
        let metrics = Arc::new(MetricsRegistry::new());
        let loopback = LoopbackConfig {
            fault: Some(plan),
            retry: RetryPolicy { base_backoff_micros: 20, ..Default::default() },
            ..LoopbackConfig::new(cfg)
        };
        let mut trainer = DistributedTrainer::new(&ds, loopback, Arc::clone(&metrics)).unwrap();
        trainer.train(&ds).unwrap();
        trainer.shutdown();
        metrics.counter_values()
    };
    // Determinism down to every counter: this is what lets CI grep exact
    // values out of the dist-smoke run.
    assert_eq!(run(), run());
}
